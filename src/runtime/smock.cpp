#include "runtime/smock.hpp"

#include <iterator>
#include <set>
#include <utility>

#include "util/logging.hpp"

namespace psf::runtime {

// ---- Component convenience methods (need the full SmockRuntime type) ------

void Component::call(const std::string& iface, Request request,
                     ResponseCallback done) {
  PSF_CHECK_MSG(runtime_ != nullptr, "component used before installation");
  runtime_->call(self_, iface, std::move(request), std::move(done));
}

void Component::charge_cpu(double units, std::function<void()> then) {
  PSF_CHECK(runtime_ != nullptr);
  runtime_->charge_cpu(runtime_->instance(self_).node, units,
                       std::move(then));
}

sim::Simulator& Component::simulator() {
  PSF_CHECK(runtime_ != nullptr);
  return runtime_->simulator();
}

const spec::ComponentDef& Component::definition() const {
  PSF_CHECK(runtime_ != nullptr);
  return *runtime_->instance(self_).def;
}

const planner::FactorBindings& Component::factors() const {
  PSF_CHECK(runtime_ != nullptr);
  return runtime_->instance(self_).factors;
}

net::NodeId Component::node() const {
  PSF_CHECK(runtime_ != nullptr);
  return runtime_->instance(self_).node;
}

SmockRuntime& Component::runtime() {
  PSF_CHECK(runtime_ != nullptr);
  return *runtime_;
}

// ---- installation -----------------------------------------------------

void SmockRuntime::install(
    const spec::ComponentDef& def, net::NodeId node,
    planner::FactorBindings factors, net::NodeId code_origin,
    std::function<void(util::Expected<RuntimeInstanceId>)> done) {
  if (!factories_.has(def.name)) {
    done(util::not_found("no factory for component '" + def.name + "'"));
    return;
  }
  const net::NodeId origin =
      code_origin.valid() ? code_origin : node;  // local install
  // A node keeps the code of every component ever installed on it, so a
  // repeat remote install pays only the zero-byte control round (latency,
  // not serialization) — the warm half of the access-path cache story.
  const auto code_key = std::make_pair(node.value, def.name);
  const bool code_cached = origin != node && code_present_.count(code_key) != 0;
  if (code_cached) ++stats_.code_cache_hits;
  const std::uint64_t code_bytes =
      (origin == node || code_cached) ? 0 : def.behaviors.code_size_bytes;

  // Download the component's code to the target node, then let the node
  // wrapper instantiate and initialize it. The drop handler turns a severed
  // or lossy download into a clean install failure instead of a hang.
  auto shared_done = std::make_shared<
      std::function<void(util::Expected<RuntimeInstanceId>)>>(std::move(done));
  send_bytes(
      origin, node, code_bytes,
      [this, &def, node, code_key, factors = std::move(factors),
       shared_done]() mutable {
        code_present_.insert(code_key);
        auto component = factories_.create(def.name);
        if (!component) {
          (*shared_done)(component.status());
          return;
        }
        const RuntimeInstanceId id = next_id_++;
        Instance inst;
        inst.id = id;
        inst.def = &def;
        inst.node = node;
        inst.factors = std::move(factors);
        inst.component = std::move(component).value();
        inst.component->runtime_ = this;
        inst.component->self_ = id;
        instances_.emplace(id, std::move(inst));
        ++stats_.installs;
        (*shared_done)(id);
      },
      [&def, shared_done](TransportError kind) {
        (*shared_done)(util::failed_precondition(
            std::string("code download for '") + def.name + "' " +
            transport_error_name(kind) + " in transit"));
      });
}

util::Status SmockRuntime::wire(RuntimeInstanceId client,
                                const std::string& iface,
                                RuntimeInstanceId server) {
  if (!exists(client)) return util::not_found("unknown client instance");
  if (!exists(server)) return util::not_found("unknown server instance");
  instances_.at(client).wires[iface] = server;
  return util::Status::ok();
}

util::Status SmockRuntime::start(RuntimeInstanceId id) {
  if (!exists(id)) return util::not_found("unknown instance");
  Instance& inst = instances_.at(id);
  if (inst.started) {
    return util::failed_precondition("instance already started");
  }
  inst.started = true;
  inst.component->on_start();
  return util::Status::ok();
}

util::Status SmockRuntime::stop(RuntimeInstanceId id) {
  if (!exists(id)) return util::not_found("unknown instance");
  Instance& inst = instances_.at(id);
  if (!inst.started) return util::failed_precondition("instance not started");
  inst.component->on_stop();
  inst.started = false;
  return util::Status::ok();
}

util::Status SmockRuntime::uninstall(RuntimeInstanceId id) {
  if (!exists(id)) return util::not_found("unknown instance");
  Instance& inst = instances_.at(id);
  if (inst.started) {
    inst.component->on_stop();
    inst.started = false;
  }
  instances_.erase(id);
  return util::Status::ok();
}

// ---- live migration -----------------------------------------------------

void SmockRuntime::transfer_state(RuntimeInstanceId from, RuntimeInstanceId to,
                                  std::function<void(util::Status)> done) {
  if (!exists(from)) {
    done(util::not_found("transfer_state: unknown source instance"));
    return;
  }
  if (!exists(to)) {
    done(util::not_found("transfer_state: unknown destination instance"));
    return;
  }
  auto shared_done =
      std::make_shared<std::function<void(util::Status)>>(std::move(done));
  // Quiesce first: the source flushes coherence queues / write-backs so the
  // snapshot it exports is complete. prepare_migration may complete
  // asynchronously (simulated flush RPCs), so everything below re-checks
  // liveness.
  instances_.at(from).component->prepare_migration([this, from, to,
                                                    shared_done] {
    if (!exists(from) || !exists(to)) {
      (*shared_done)(util::failed_precondition(
          "instance vanished during migration quiesce"));
      return;
    }
    Instance& src = instances_.at(from);
    auto snapshot = src.component->export_state();
    if (!snapshot.has_value()) {
      // Stateless component: nothing to move, cutover is free.
      (*shared_done)(util::Status::ok());
      return;
    }
    const net::NodeId src_node = src.node;
    const net::NodeId dst_node = instances_.at(to).node;
    auto state = std::make_shared<StateSnapshot>(std::move(*snapshot));
    send_bytes(
        src_node, dst_node, state->bytes,
        [this, to, state, shared_done] {
          if (!exists(to)) {
            (*shared_done)(util::failed_precondition(
                "migration target vanished while state was in flight"));
            return;
          }
          stats_.state_transfer_bytes += state->bytes;
          (*shared_done)(instances_.at(to).component->import_state(*state));
        },
        [shared_done](TransportError kind) {
          (*shared_done)(util::failed_precondition(
              std::string("state transfer ") + transport_error_name(kind) +
              " in transit"));
        });
  });
}

void SmockRuntime::migrate(
    RuntimeInstanceId id, net::NodeId to_node, net::NodeId code_origin,
    sim::Duration drain,
    std::function<void(util::Expected<RuntimeInstanceId>)> done) {
  if (!exists(id)) {
    done(util::not_found("migrate: unknown instance"));
    return;
  }
  if (!to_node.valid() || to_node.value >= network_.node_count() ||
      !network_.node(to_node).up) {
    done(util::failed_precondition("migrate: destination node unusable"));
    return;
  }
  Instance& old_inst = instances_.at(id);
  if (old_inst.node == to_node) {
    done(id);  // already there — cutover to itself is a no-op
    return;
  }
  const spec::ComponentDef& def = *old_inst.def;
  auto shared_done = std::make_shared<
      std::function<void(util::Expected<RuntimeInstanceId>)>>(std::move(done));
  install(
      def, to_node, old_inst.factors, code_origin,
      [this, id, drain, shared_done](util::Expected<RuntimeInstanceId> result) {
        if (!result.has_value()) {
          (*shared_done)(result.status());
          return;
        }
        const RuntimeInstanceId new_id = result.value();
        if (!exists(id)) {
          uninstall(new_id);
          (*shared_done)(util::failed_precondition(
              "migrate: source instance vanished during install"));
          return;
        }
        {
          Instance& old_ref = instances_.at(id);
          Instance& new_ref = instances_.at(new_id);
          // The replacement inherits the plan's view of the old instance:
          // outbound wires, effective properties, and load reservations all
          // describe the component, not the node it sat on.
          new_ref.effective = old_ref.effective;
          new_ref.downstream_latency_s = old_ref.downstream_latency_s;
          new_ref.reserved_load_rps = old_ref.reserved_load_rps;
          new_ref.wires = old_ref.wires;
        }
        // Start BEFORE the state lands so on_start registrations (e.g. a
        // view registering its replica with the coherence directory) exist
        // when import_state merges the snapshot in.
        const util::Status started = start(new_id);
        if (!started.is_ok()) {
          uninstall(new_id);
          (*shared_done)(started);
          return;
        }
        transfer_state(id, new_id, [this, id, new_id, drain,
                                    shared_done](util::Status status) {
          if (!status.is_ok()) {
            // State never arrived: abort the cutover and leave the old
            // instance serving — migration is all-or-nothing.
            uninstall(new_id);
            (*shared_done)(status);
            return;
          }
          ++stats_.migrations;
          // Cutover: the caller rewires inbound traffic to new_id now. The
          // old copy keeps answering stragglers for the drain window, then
          // disappears; anything later gets kDeadTarget and the retry layer
          // rebinds.
          (*shared_done)(new_id);
          sim_.schedule(drain, [this, id] {
            if (exists(id)) uninstall(id);
          });
        });
      });
}

std::vector<RuntimeInstanceId> SmockRuntime::crash_node(net::NodeId node) {
  std::vector<RuntimeInstanceId> victims = instances_on(node);
  for (RuntimeInstanceId id : victims) {
    // A crash skips on_stop (no chance to flush state) and tombstones the
    // instance — see Instance::crashed for why the object is kept.
    Instance& inst = instances_.at(id);
    inst.crashed = true;
    inst.started = false;
  }
  // The machine is wiped: staged component code does not survive a crash.
  for (auto it = code_present_.begin(); it != code_present_.end();) {
    it = it->first == node.value ? code_present_.erase(it) : std::next(it);
  }
  if (!victims.empty()) {
    PSF_WARN() << "node " << network_.node(node).name << " crashed; "
               << victims.size() << " instance(s) lost";
  }
  return victims;
}

bool SmockRuntime::has_dangling_wires(RuntimeInstanceId id) const {
  std::vector<RuntimeInstanceId> stack{id};
  std::set<RuntimeInstanceId> visited;
  while (!stack.empty()) {
    const RuntimeInstanceId current = stack.back();
    stack.pop_back();
    if (!visited.insert(current).second) continue;
    if (!exists(current)) return true;
    for (const auto& [iface, target] : instances_.at(current).wires) {
      stack.push_back(target);
    }
  }
  return false;
}

Instance& SmockRuntime::instance(RuntimeInstanceId id) {
  auto it = instances_.find(id);
  PSF_CHECK_MSG(it != instances_.end(), "unknown instance id");
  return it->second;
}

const Instance& SmockRuntime::instance(RuntimeInstanceId id) const {
  auto it = instances_.find(id);
  PSF_CHECK_MSG(it != instances_.end(), "unknown instance id");
  return it->second;
}

std::vector<RuntimeInstanceId> SmockRuntime::instances_on(
    net::NodeId node) const {
  std::vector<RuntimeInstanceId> out;
  for (const auto& [id, inst] : instances_) {
    if (inst.node == node && !inst.crashed) out.push_back(id);
  }
  return out;
}

// ---- request routing ---------------------------------------------------

void SmockRuntime::call(RuntimeInstanceId from, const std::string& iface,
                        Request request, ResponseCallback done) {
  Instance& src = instance(from);
  auto wire_it = src.wires.find(iface);
  if (wire_it == src.wires.end()) {
    done(Response::failure("instance '" + src.def->name +
                           "' has no wire for interface '" + iface + "'"));
    return;
  }
  if (!exists(wire_it->second)) {
    done(Response::transport_failure(
        TransportError::kDeadTarget,
        "wire for '" + iface + "' points at a removed instance"));
    return;
  }
  ++src.stats.requests_forwarded;
  src.stats.bytes_sent += request.wire_bytes;
  const RuntimeInstanceId target = wire_it->second;
  const net::NodeId from_node = src.node;
  const std::uint64_t bytes = request.wire_bytes;
  // The callback is shared between the delivery and drop paths; exactly one
  // of them fires.
  auto shared_done = std::make_shared<ResponseCallback>(std::move(done));
  send_bytes(
      from_node, instance(target).node, bytes,
      [this, target, request = std::move(request), from_node,
       shared_done]() mutable {
        deliver(target, std::move(request), from_node,
                std::move(*shared_done));
      },
      [shared_done](TransportError kind) {
        (*shared_done)(Response::transport_failure(
            kind, std::string("request ") + transport_error_name(kind) +
                      " in transit"));
      });
}

void SmockRuntime::invoke_from_node(net::NodeId from, RuntimeInstanceId target,
                                    Request request, ResponseCallback done) {
  if (!exists(target)) {
    done(Response::transport_failure(TransportError::kDeadTarget,
                                     "target instance does not exist"));
    return;
  }
  const std::uint64_t bytes = request.wire_bytes;
  auto shared_done = std::make_shared<ResponseCallback>(std::move(done));
  send_bytes(
      from, instance(target).node, bytes,
      [this, target, request = std::move(request), from,
       shared_done]() mutable {
        deliver(target, std::move(request), from, std::move(*shared_done));
      },
      [shared_done](TransportError kind) {
        (*shared_done)(Response::transport_failure(
            kind, std::string("request ") + transport_error_name(kind) +
                      " in transit"));
      });
}

void SmockRuntime::invoke_from_node(net::NodeId from, RuntimeInstanceId target,
                                    Request request, ResponseCallback done,
                                    sim::Duration timeout) {
  if (timeout.nanos() <= 0) {
    invoke_from_node(from, target, std::move(request), std::move(done));
    return;
  }
  struct Pending {
    bool settled = false;
    sim::EventId timer = 0;
    ResponseCallback done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  pending->timer = sim_.schedule(timeout, [this, pending] {
    if (pending->settled) return;
    pending->settled = true;
    ++stats_.invoke_timeouts;
    pending->done(Response::transport_failure(
        TransportError::kTimeout, "invocation deadline expired"));
  });
  invoke_from_node(from, target, std::move(request),
                   [this, pending](Response response) {
                     if (pending->settled) return;  // timed out; discard
                     pending->settled = true;
                     sim_.cancel(pending->timer);
                     pending->done(std::move(response));
                   });
}

void SmockRuntime::deliver(RuntimeInstanceId target, Request request,
                           net::NodeId reply_to, ResponseCallback done) {
  if (!exists(target)) {
    done(Response::transport_failure(TransportError::kDeadTarget,
                                     "target instance vanished in flight"));
    return;
  }
  Instance& dst = instance(target);
  if (!dst.started) {
    done(Response::transport_failure(
        TransportError::kDeadTarget,
        "instance '" + dst.def->name + "' not started"));
    return;
  }
  ++stats_.requests_delivered;
  ++dst.stats.requests_handled;
  dst.stats.bytes_received += request.wire_bytes;

  const net::NodeId target_node = dst.node;
  charge_cpu(
      target_node, dst.def->behaviors.cpu_per_request,
      [this, target, request = std::move(request), reply_to, target_node,
       done = std::move(done)]() mutable {
        if (!exists(target)) {
          done(Response::failure("target instance vanished in flight"));
          return;
        }
        Instance& inst = instance(target);
        inst.component->handle_request(
            request,
            [this, reply_to, target_node,
             done = std::move(done)](Response response) mutable {
              // Ship the response back to the caller's node. A dropped
              // response fails the caller fast (the op may have executed —
              // at-least-once semantics, see DESIGN.md §8).
              const std::uint64_t bytes = response.wire_bytes;
              auto shared_done =
                  std::make_shared<ResponseCallback>(std::move(done));
              send_bytes(
                  target_node, reply_to, bytes,
                  [response = std::move(response), shared_done]() mutable {
                    (*shared_done)(std::move(response));
                  },
                  [shared_done](TransportError kind) {
                    (*shared_done)(Response::transport_failure(
                        kind, std::string("response ") +
                                  transport_error_name(kind) +
                                  " in transit"));
                  });
            });
      });
}

// ---- low-level primitives ---------------------------------------------

namespace {

// Hop-by-hop transfer state. Each scheduled event holds the shared_ptr, so
// the state lives exactly until the final hop completes (no reference
// cycles — the state does not hold its own continuation).
struct Transfer {
  SmockRuntime* runtime;
  std::vector<net::LinkId> links;
  std::uint64_t bytes;
  std::function<void()> delivered;
  std::function<void(TransportError)> dropped;
};

}  // namespace

void SmockRuntime::send_bytes(net::NodeId from, net::NodeId to,
                              std::uint64_t bytes,
                              std::function<void()> delivered,
                              std::function<void(TransportError)> dropped) {
  if (from == to) {
    // Local delivery: same-node IPC is negligible next to network costs.
    // (A crashed node cannot source traffic in the first place: nothing
    // hosted there still runs.)
    delivered();
    return;
  }
  auto route = network_.route(from, to);
  if (!route) {
    PSF_WARN() << "send_bytes: no route from " << network_.node(from).name
               << " to " << network_.node(to).name << "; dropping";
    ++stats_.messages_unroutable;
    if (dropped) dropped(TransportError::kUnreachable);
    return;
  }
  ++stats_.messages_sent;
  stats_.bytes_transferred += bytes;

  auto transfer = std::make_shared<Transfer>(Transfer{
      this, route->links, bytes, std::move(delivered), std::move(dropped)});

  // Walk the route hop by hop; each hop waits for the link to be free,
  // serializes the message, then incurs the propagation latency. Link state
  // is re-checked at each hop (the route was chosen at send time, but links
  // may flap mid-flight), and lossy links draw per-hop from the runtime's
  // seeded fault RNG.
  struct Step {
    static void run(const std::shared_ptr<Transfer>& t, std::size_t hop) {
      if (hop == t->links.size()) {
        t->delivered();
        return;
      }
      SmockRuntime& rt = *t->runtime;
      const net::Link& link = rt.network().link(t->links[hop]);
      const bool severed = !link.up || !rt.network().node_up(link.a) ||
                           !rt.network().node_up(link.b);
      if (severed || (link.loss > 0.0 && rt.fault_rng_.bernoulli(link.loss))) {
        ++rt.stats_.messages_dropped;
        if (t->dropped) t->dropped(TransportError::kDropped);
        return;
      }
      const sim::Time arrival = rt.reserve_link(t->links[hop], t->bytes);
      rt.simulator().schedule_at(arrival,
                                 [t, hop]() { Step::run(t, hop + 1); });
    }
  };
  Step::run(transfer, 0);
}

sim::Time SmockRuntime::reserve_link(net::LinkId lid, std::uint64_t bytes) {
  PSF_CHECK(lid.valid() && lid.value < network_.link_count());
  if (link_free_.size() <= lid.value) {
    link_free_.resize(network_.link_count(), sim::Time::zero());
  }
  const net::Link& link = network_.link(lid);
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / link.bandwidth_bps;
  const sim::Time now = sim_.now();
  sim::Time start = link_free_[lid.value];
  if (start < now) start = now;
  const sim::Time tx_done = start + sim::Duration::from_seconds(serialize_s);
  link_free_[lid.value] = tx_done;
  if (link_busy_s_.size() <= lid.value) {
    link_busy_s_.resize(network_.link_count(), 0.0);
  }
  link_busy_s_[lid.value] += serialize_s;
  return tx_done + link.latency;
}

double SmockRuntime::node_busy_seconds(net::NodeId node) const {
  if (!node.valid() || node.value >= node_busy_s_.size()) return 0.0;
  return node_busy_s_[node.value];
}

double SmockRuntime::link_busy_seconds(net::LinkId link) const {
  if (!link.valid() || link.value >= link_busy_s_.size()) return 0.0;
  return link_busy_s_[link.value];
}

void SmockRuntime::charge_cpu(net::NodeId node, double units,
                              std::function<void()> done) {
  PSF_CHECK(node.valid() && node.value < network_.node_count());
  if (node_cpu_free_.size() <= node.value) {
    node_cpu_free_.resize(network_.node_count(), sim::Time::zero());
  }
  const double seconds = units / network_.node(node).cpu_capacity;
  const sim::Time now = sim_.now();
  sim::Time start = node_cpu_free_[node.value];
  if (start < now) start = now;
  const sim::Time finish = start + sim::Duration::from_seconds(seconds);
  node_cpu_free_[node.value] = finish;
  if (node_busy_s_.size() <= node.value) {
    node_busy_s_.resize(network_.node_count(), 0.0);
  }
  node_busy_s_[node.value] += seconds;
  sim_.schedule_at(finish, std::move(done));
}

}  // namespace psf::runtime
