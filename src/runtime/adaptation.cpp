#include "runtime/adaptation.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "util/logging.hpp"

namespace psf::runtime {

const char* adaptation_outcome_name(AdaptationEvent::Outcome outcome) {
  switch (outcome) {
    case AdaptationEvent::Outcome::kStillValid: return "still-valid";
    case AdaptationEvent::Outcome::kRepaired: return "repaired";
    case AdaptationEvent::Outcome::kUnsatisfiable: return "unsatisfiable";
    case AdaptationEvent::Outcome::kFailed: return "failed";
  }
  return "?";
}

AdaptationController::AdaptationController(SmockRuntime& runtime,
                                           GenericServer& server,
                                           NetworkMonitor& monitor,
                                           std::string service,
                                           AdaptationParams params)
    : runtime_(runtime),
      server_(server),
      service_(std::move(service)),
      params_(params) {
  PSF_CHECK_MSG(server_.service_spec(service_) != nullptr,
                "service not registered");
  monitor.subscribe([this](const NetworkMonitor::ChangeEvent&) {
    ++stats_.events_observed;
    // Fresh properties first, then decide what still holds. (The server's
    // own monitor subscription already bumped the epoch, so no cached plan
    // survives regardless of what the check decides.)
    auto st = server_.refresh_environment(service_);
    if (!st.is_ok()) {
      PSF_WARN() << "adaptation: environment refresh failed: "
                 << st.to_string();
      return;
    }
    check_now();
  });
}

std::size_t AdaptationController::track(AccessOutcome outcome,
                                        planner::PlanRequest request) {
  PSF_CHECK_MSG(outcome.instances.size() == outcome.plan.placements.size(),
                "AccessOutcome missing per-placement instances");
  backing_.push_back(outcome.instances);
  repairing_.push_back(0);
  tracked_.push_back(Tracked{std::move(outcome), std::move(request)});
  return tracked_.size() - 1;
}

void AdaptationController::check_now() {
  if (checking_) return;
  checking_ = true;
  ++stats_.checks;
  for (std::size_t i = 0; i < tracked_.size(); ++i) maybe_repair(i);
  checking_ = false;
}

std::vector<planner::RepairViolation> AdaptationController::classify(
    std::size_t index, bool* broken_backing) const {
  const Tracked& tracked = tracked_[index];
  const planner::DeploymentPlan& plan = tracked.outcome.plan;
  net::Network& network = runtime_.network();
  std::vector<planner::RepairViolation> out;

  const auto add = [&out](planner::RepairViolation::Kind kind,
                          net::NodeId node, net::LinkId link,
                          std::string detail) {
    for (const planner::RepairViolation& v : out) {
      if (v.kind == kind && v.node == node && v.link == link) return;
    }
    planner::RepairViolation v;
    v.kind = kind;
    v.node = node;
    v.link = link;
    v.detail = std::move(detail);
    out.push_back(std::move(v));
  };

  // Node-level: a placement's host died, or is under a maintenance drain.
  *broken_backing = false;
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const net::NodeId node = plan.placements[i].node;
    if (!network.node_up(node)) {
      add(planner::RepairViolation::Kind::kNodeDeath, node, net::LinkId{},
          "node down");
    } else if (drained_.count(node.value) != 0) {
      add(planner::RepairViolation::Kind::kNodeDeath, node, net::LinkId{},
          "maintenance drain");
    }
    if (!runtime_.exists(backing_[index][i])) *broken_backing = true;
  }

  // Link-level: a wire's planned route is severed, slower than the plan
  // assumed (x latency_slack), or lost most of its assumed bandwidth.
  for (const planner::Wire& w : plan.wires) {
    if (w.route.links.empty()) continue;  // co-located, nothing to degrade
    bool severed = false;
    net::LinkId blame;
    std::int64_t current_ns = 0;
    net::LinkId slowest;
    std::int64_t slowest_ns = -1;
    net::LinkId narrowest;
    double narrowest_bps = std::numeric_limits<double>::infinity();
    for (net::LinkId l : w.route.links) {
      const net::Link& link = network.link(l);
      if (!link.up || !network.node_up(link.a) || !network.node_up(link.b)) {
        severed = true;
        blame = l;
        break;
      }
      current_ns += link.latency.nanos();
      if (link.latency.nanos() > slowest_ns) {
        slowest_ns = link.latency.nanos();
        slowest = l;
      }
      if (link.bandwidth_bps < narrowest_bps) {
        narrowest_bps = link.bandwidth_bps;
        narrowest = l;
      }
    }
    if (severed) {
      add(planner::RepairViolation::Kind::kLinkDegradation, net::NodeId{},
          blame, "planned route severed");
      continue;
    }
    const double planned_ns = static_cast<double>(w.route.total_latency.nanos());
    if (static_cast<double>(current_ns) >
        params_.latency_slack * planned_ns) {
      add(planner::RepairViolation::Kind::kLinkDegradation, net::NodeId{},
          slowest, "route latency past plan-assumed budget");
    }
    if (narrowest_bps <
        params_.bandwidth_floor * w.route.bottleneck_bandwidth_bps) {
      add(planner::RepairViolation::Kind::kLinkDegradation, net::NodeId{},
          narrowest, "route bandwidth below plan-assumed floor");
    }
  }

  // Property drift and capacity: the independent validator against the
  // refreshed environment (a drifted credential fails condition/
  // compatibility checks; a capacity squeeze fails condition 3).
  const spec::ServiceSpec* spec = server_.service_spec(service_);
  const planner::EnvironmentView* env = server_.environment(service_);
  PSF_CHECK(spec != nullptr && env != nullptr);
  const planner::ValidationReport report = planner::validate_plan(
      *spec, *env, tracked.request, plan,
      server_.existing_instances(service_));
  for (const planner::Violation& v : report.violations) {
    net::NodeId node;
    for (const planner::Placement& p : plan.placements) {
      if (p.id == v.instance) {
        node = p.node;
        break;
      }
    }
    if (!node.valid()) continue;
    const auto kind = v.kind == planner::Violation::Kind::kCapacity
                          ? planner::RepairViolation::Kind::kLoadOverCapacity
                          : planner::RepairViolation::Kind::kPropertyDrift;
    add(kind, node, net::LinkId{}, v.detail);
  }
  return out;
}

void AdaptationController::maybe_repair(std::size_t index) {
  if (repairing_[index] != 0) return;  // one repair per deployment at a time
  bool broken_backing = false;
  std::vector<planner::RepairViolation> violations =
      classify(index, &broken_backing);
  if (violations.empty() && !broken_backing) {
    ++stats_.still_valid;
    push_event(AdaptationEvent{runtime_.simulator().now(), index,
                               AdaptationEvent::Outcome::kStillValid, false,
                               0, ""});
    return;
  }

  std::string detail;
  for (const planner::RepairViolation& v : violations) {
    if (!detail.empty()) detail += ", ";
    detail += repair_violation_kind_name(v.kind);
    if (v.node.valid()) {
      detail += "@" + runtime_.network().node(v.node).name;
    }
  }
  if (broken_backing) {
    if (!detail.empty()) detail += ", ";
    detail += "backing instance gone";
  }
  PSF_INFO() << "adaptation: deployment " << index
             << " in violation: " << detail;

  // Every drained node joins the violation list even when it hosts nothing
  // of this plan: the repair search must not move anything ONTO a node
  // under maintenance.
  for (std::uint32_t d : drained_) {
    const net::NodeId node{d};
    const bool present = std::any_of(
        violations.begin(), violations.end(),
        [&](const planner::RepairViolation& v) {
          return v.kind == planner::RepairViolation::Kind::kNodeDeath &&
                 v.node == node;
        });
    if (!present) {
      planner::RepairViolation v;
      v.kind = planner::RepairViolation::Kind::kNodeDeath;
      v.node = node;
      v.detail = "maintenance drain";
      violations.push_back(std::move(v));
    }
  }

  ++stats_.repairs_triggered;
  repairing_[index] = 1;
  auto repair_outcome = std::make_shared<planner::RepairOutcome>();
  server_.request_repair(
      service_, tracked_[index].request, tracked_[index].outcome.plan,
      violations,
      [this, index, repair_outcome,
       detail](util::Expected<AccessOutcome> fresh) {
        AdaptationEvent event;
        event.at = runtime_.simulator().now();
        event.tracked_index = index;
        event.fell_back_to_full = repair_outcome->fell_back_to_full;
        event.detail = detail;
        if (!fresh.has_value()) {
          const bool unsat =
              fresh.status().code() == util::ErrorCode::kUnsatisfiable;
          event.outcome = unsat ? AdaptationEvent::Outcome::kUnsatisfiable
                                : AdaptationEvent::Outcome::kFailed;
          event.detail += "; repair: " + fresh.status().to_string();
          if (unsat) {
            ++stats_.unsatisfiable;
          } else {
            ++stats_.failed;
          }
          repairing_[index] = 0;
          push_event(std::move(event));
          return;
        }
        cutover(index, std::move(fresh).value(), std::move(event));
      },
      repair_outcome.get());
}

void AdaptationController::cutover(std::size_t index, AccessOutcome fresh,
                                   AdaptationEvent event) {
  // Sync-then-cutover: move state from each replaced live instance into its
  // replacement BEFORE any wire is swung, so the new chain is warm the
  // moment traffic lands on it. Pairing is by component, old plan order; a
  // replaced instance that no longer exists (crash) simply has no state to
  // move — that is the lease-recovery path, not a migration.
  const Tracked& tracked = tracked_[index];
  std::vector<std::pair<RuntimeInstanceId, RuntimeInstanceId>> pairs;
  if (params_.migrate_state) {
    std::vector<char> claimed(fresh.plan.placements.size(), 0);
    for (std::size_t i = 0; i < tracked.outcome.plan.placements.size(); ++i) {
      const planner::Placement& op = tracked.outcome.plan.placements[i];
      if (op.id == tracked.outcome.plan.entry) continue;
      const RuntimeInstanceId old_id = tracked.outcome.instances[i];
      if (!runtime_.exists(old_id)) continue;
      if (std::find(fresh.instances.begin(), fresh.instances.end(), old_id) !=
          fresh.instances.end()) {
        continue;  // survives into the new plan — nothing to move
      }
      for (std::size_t j = 0; j < fresh.plan.placements.size(); ++j) {
        const planner::Placement& np = fresh.plan.placements[j];
        if (claimed[j] != 0 || np.id == fresh.plan.entry ||
            np.reuse_existing) {
          continue;
        }
        if (np.component->name != op.component->name) continue;
        claimed[j] = 1;
        pairs.emplace_back(old_id, fresh.instances[j]);
        break;
      }
    }
  }
  if (pairs.empty()) {
    finish_cutover(index, std::move(fresh), std::move(event));
    return;
  }
  struct TransferBatch {
    std::size_t remaining;
    AccessOutcome fresh;
    AdaptationEvent event;
  };
  auto batch = std::make_shared<TransferBatch>(
      TransferBatch{pairs.size(), std::move(fresh), std::move(event)});
  for (const auto& [old_id, new_id] : pairs) {
    runtime_.transfer_state(
        old_id, new_id, [this, index, old_id, batch](util::Status st) {
          if (st.is_ok()) {
            ++stats_.state_transfers;
            ++batch->event.state_transfers;
          } else {
            // Cold replacement: correct but unwarmed — coherence pushes
            // rebuild the cache over time.
            PSF_WARN() << "adaptation: state transfer from " << old_id
                       << " failed (" << st.to_string()
                       << "); replacement starts cold";
          }
          if (--batch->remaining == 0) {
            finish_cutover(index, std::move(batch->fresh),
                           std::move(batch->event));
          }
        });
  }
}

void AdaptationController::finish_cutover(std::size_t index,
                                          AccessOutcome fresh,
                                          AdaptationEvent event) {
  Tracked& tracked = tracked_[index];
  const RuntimeInstanceId old_entry = tracked.outcome.entry;
  const RuntimeInstanceId new_entry = fresh.entry;
  const auto fail = [&](const std::string& why) {
    event.outcome = AdaptationEvent::Outcome::kFailed;
    event.detail += "; cutover: " + why;
    ++stats_.failed;
    repairing_[index] = 0;
    push_event(std::move(event));
  };
  if (!runtime_.exists(old_entry)) {
    fail("old entry instance vanished");
    return;
  }

  // 1. Graft the new chain onto the client's live entry so the proxy
  //    binding survives the reconfiguration unbroken.
  for (const auto& [iface, target] : runtime_.instance(new_entry).wires) {
    if (auto st = runtime_.wire(old_entry, iface, target); !st.is_ok()) {
      fail(st.to_string());
      return;
    }
  }

  // 2. The freshly deployed entry was only a template; retire it now.
  if (new_entry != old_entry) {
    if (auto st = runtime_.uninstall(new_entry); !st.is_ok()) {
      fail(st.to_string());
      return;
    }
  }

  // 3. Release the old plan's load reservations on reused instances.
  const planner::DeploymentPlan old_plan = tracked.outcome.plan;
  const std::vector<RuntimeInstanceId> old_backing = tracked.outcome.instances;
  for (const planner::Placement& p : old_plan.placements) {
    if (p.reuse_existing) {
      (void)server_.release_load(service_, p.existing_runtime_id,
                                 p.inbound_rate_rps);
    }
  }

  // 4. Adopt the new plan, preserving the live entry id.
  std::vector<RuntimeInstanceId> new_backing = fresh.instances;
  for (RuntimeInstanceId& id : new_backing) {
    if (id == new_entry) id = old_entry;
  }
  tracked.outcome.plan = fresh.plan;
  tracked.outcome.instances = new_backing;
  backing_[index] = new_backing;

  // 5. Retire what nothing references anymore — eagerly out of the plan
  //    cache and reuse pool (a stale handle must never bind a migrated-away
  //    instance), but lazily off the runtime: the old copy keeps serving
  //    stragglers for the drain window, then uninstalls. Anything later
  //    gets kDeadTarget and the retry layer rebinds.
  const std::set<RuntimeInstanceId> still_used = [&] {
    std::set<RuntimeInstanceId> used;
    for (std::size_t i = 0; i < backing_.size(); ++i) {
      used.insert(backing_[i].begin(), backing_[i].end());
    }
    std::vector<RuntimeInstanceId> frontier(used.begin(), used.end());
    while (!frontier.empty()) {
      const RuntimeInstanceId id = frontier.back();
      frontier.pop_back();
      if (!runtime_.exists(id)) continue;
      for (const auto& [iface, target] : runtime_.instance(id).wires) {
        if (used.insert(target).second) frontier.push_back(target);
      }
    }
    return used;
  }();
  for (std::size_t i = 0; i < old_plan.placements.size(); ++i) {
    const planner::Placement& p = old_plan.placements[i];
    const RuntimeInstanceId id = old_backing[i];
    if (p.reuse_existing) continue;           // not ours to retire
    if (id == old_entry) continue;            // preserved
    if (still_used.count(id) != 0) continue;  // someone else still wired
    if (!runtime_.exists(id)) continue;
    if (runtime_.instance(id).def->static_placement) continue;
    (void)server_.forget_instance(service_, id);
    ++stats_.instances_retired;
    runtime_.simulator().schedule(params_.drain, [this, id] {
      if (runtime_.exists(id)) (void)runtime_.uninstall(id);
    });
  }

  event.outcome = AdaptationEvent::Outcome::kRepaired;
  ++stats_.repaired;
  repairing_[index] = 0;
  push_event(std::move(event));
}

void AdaptationController::drain_node(net::NodeId node) {
  if (!drained_.insert(node.value).second) return;
  ++stats_.drains_requested;
  PSF_INFO() << "adaptation: draining node "
             << runtime_.network().node(node).name;
  // Pooled instances on the node must stop being handed out before any
  // repair search runs; forget_instance also evicts cache entries that
  // reference them.
  const std::vector<planner::ExistingInstance> pool =
      server_.existing_instances(service_);
  for (const planner::ExistingInstance& inst : pool) {
    if (inst.node == node) {
      (void)server_.forget_instance(service_, inst.runtime_id);
    }
  }
  check_now();
}

void AdaptationController::push_event(AdaptationEvent event) {
  events_.push_back(std::move(event));
}

}  // namespace psf::runtime
