#include "runtime/sharded_lookup.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace psf::runtime {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const std::string& name) {
  // FNV-1a, finalized through splitmix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

// Rendezvous weight of (shard, key). Keyed by shard INDEX, not host: the
// weight of existing shards must not change when a new one is appended, and
// hosts may repeat across shards.
std::uint64_t rendezvous_weight(std::size_t shard, std::uint64_t key_hash) {
  return splitmix64(key_hash ^ splitmix64(0x5164eadb0f5a0b1dULL + shard));
}

}  // namespace

ShardedLookupService::ShardedLookupService(const net::Network& network,
                                           std::vector<net::NodeId> shard_hosts)
    : network_(network) {
  PSF_CHECK_MSG(!shard_hosts.empty(), "need at least one lookup shard");
  shards_.reserve(shard_hosts.size());
  for (const net::NodeId host : shard_hosts) {
    shards_.push_back(std::make_unique<LookupService>(host));
  }
}

LookupService& ShardedLookupService::shard(std::size_t i) {
  PSF_CHECK_MSG(i < shards_.size(), "shard index out of range");
  return *shards_[i];
}

const LookupService& ShardedLookupService::shard(std::size_t i) const {
  PSF_CHECK_MSG(i < shards_.size(), "shard index out of range");
  return *shards_[i];
}

LookupHandle ShardedLookupService::handle_for(const std::string& service_name) {
  const std::uint64_t h = hash_name(service_name);
  return LookupHandle{h == 0 ? 1 : h};
}

std::size_t ShardedLookupService::owner_shard(
    const std::string& service_name) const {
  const std::uint64_t key = hash_name(service_name);
  std::size_t best = 0;
  std::uint64_t best_weight = rendezvous_weight(0, key);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const std::uint64_t w = rendezvous_weight(s, key);
    if (w > best_weight) {
      best_weight = w;
      best = s;
    }
  }
  return best;
}

std::size_t ShardedLookupService::home_shard(net::NodeId client) const {
  std::size_t best = 0;
  auto best_latency = sim::Duration::from_nanos(
      std::numeric_limits<std::int64_t>::max());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const net::NodeId host = shards_[s]->host();
    if (host == client) return s;
    const net::Route* route = network_.cached_route(client, host);
    if (route == nullptr) continue;  // unreachable shard
    if (route->total_latency < best_latency) {
      best_latency = route->total_latency;
      best = s;
    }
  }
  return best;
}

util::Status ShardedLookupService::register_service(ServiceAdvertisement ad) {
  const std::size_t owner = owner_shard(ad.service_name);
  const std::string name = ad.service_name;
  if (auto st = shards_[owner]->register_service(std::move(ad)); !st) {
    return st;
  }
  handle_names_[handle_for(name).value] = name;
  return util::Status::ok();
}

util::Status ShardedLookupService::unregister_service(
    const std::string& service_name) {
  // The service may sit on a non-owner shard (registered before a
  // membership change or through the single-shard API); scrub everywhere.
  bool removed = false;
  for (auto& shard : shards_) {
    if (shard->unregister_service(service_name)) removed = true;
  }
  if (!removed) {
    return util::not_found("service '" + service_name + "' not registered");
  }
  handle_names_.erase(handle_for(service_name).value);
  return util::Status::ok();
}

const LookupService* ShardedLookupService::probe(
    std::size_t shard, const std::string& service_name) const {
  return shards_[shard]->find(service_name) != nullptr ? shards_[shard].get()
                                                       : nullptr;
}

LookupResolution ShardedLookupService::resolve(const std::string& service_name,
                                               net::NodeId client) {
  ++stats_.resolves;
  LookupResolution res;
  res.home_shard = home_shard(client);
  res.probe_path.push_back(res.home_shard);
  if (probe(res.home_shard, service_name) != nullptr) {
    ++stats_.home_hits;
    res.holder_shard = res.home_shard;
    res.ad = shards_[res.home_shard]->find(service_name);
    return res;
  }

  const std::size_t owner = owner_shard(service_name);
  if (owner != res.home_shard) {
    res.probe_path.push_back(owner);
    ++stats_.forwards;
    if (probe(owner, service_name) != nullptr) {
      res.holder_shard = owner;
      res.ad = shards_[owner]->find(service_name);
      return res;
    }
  }

  // Fallback sweep for services living on neither home nor owner (e.g.
  // registered on a specific shard before it stopped being the owner, with
  // no re-home having run).
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s == res.home_shard || s == owner) continue;
    res.probe_path.push_back(s);
    ++stats_.forwards;
    if (probe(s, service_name) != nullptr) {
      res.holder_shard = s;
      res.ad = shards_[s]->find(service_name);
      return res;
    }
  }
  return res;  // ad == nullptr: unknown service
}

LookupResolution ShardedLookupService::resolve(LookupHandle handle,
                                               net::NodeId client) {
  auto it = handle_names_.find(handle.value);
  if (it == handle_names_.end()) {
    // Ads registered directly with a member shard (the GenericServer path)
    // never went through register_service, so the handle→name map has no
    // entry. Recover it by hashing the ads we hold; handles stay valid no
    // matter which API registered the service.
    for (const auto& shard : shards_) {
      for (const ServiceAdvertisement* ad : shard->query({})) {
        if (handle_for(ad->service_name) == handle) {
          it = handle_names_.emplace(handle.value, ad->service_name).first;
          break;
        }
      }
      if (it != handle_names_.end()) break;
    }
  }
  if (it == handle_names_.end()) {
    ++stats_.resolves;
    LookupResolution res;
    res.home_shard = home_shard(client);
    res.probe_path.push_back(res.home_shard);
    return res;
  }
  return resolve(it->second, client);
}

std::size_t ShardedLookupService::add_shard(net::NodeId host) {
  const std::size_t new_index = shards_.size();
  shards_.push_back(std::make_unique<LookupService>(host));
  ++stats_.membership_changes;

  // Re-home: every service whose rendezvous owner became the new shard
  // moves there. Rendezvous weights of existing shards are unchanged, so
  // nothing moves between old shards.
  for (std::size_t s = 0; s < new_index; ++s) {
    for (const ServiceAdvertisement* ad : shards_[s]->query({})) {
      if (owner_shard(ad->service_name) != new_index) continue;
      ServiceAdvertisement moved = *ad;
      const std::string name = moved.service_name;
      PSF_CHECK(shards_[s]->unregister_service(name));
      PSF_CHECK(shards_[new_index]->register_service(std::move(moved)));
      ++stats_.rehomed_services;
      PSF_INFO() << "lookup shard " << new_index << " (node "
                 << host.value << ") took over service '" << name << "'";
    }
  }

  for (const auto& listener : listeners_) listener();
  return new_index;
}

void ShardedLookupService::on_membership_change(
    std::function<void()> listener) {
  listeners_.push_back(std::move(listener));
}

}  // namespace psf::runtime
