// Shared counters/histograms for the coherence data path (replica
// write-back + home directory fan-out), aggregated across every replica and
// directory that attaches — the coherence analogue of PlanCacheTelemetry.
//
// Lives in runtime (not coherence) so Telemetry::report can render it
// without a dependency cycle: coherence already depends on runtime, and
// this header needs only util. The coherence classes bump these on the hot
// path when attached; benches and views read them through
// Telemetry::attach_coherence.
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.hpp"

namespace psf::runtime {

struct CoherenceTelemetry {
  // ---- replica write-back ------------------------------------------------
  std::uint64_t updates_recorded = 0;
  std::uint64_t updates_coalesced = 0;
  std::uint64_t coalesced_bytes_saved = 0;
  std::uint64_t flushes = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t bytes_flushed = 0;
  std::uint64_t flushes_rejected = 0;
  std::uint64_t flushes_requeued = 0;
  std::uint64_t updates_dropped = 0;

  // Batch size of each shipped flush, and its home-acknowledgement round
  // trip; the window histogram samples unacked batches at ship time.
  util::SampleSet flush_batch_updates;
  util::SampleSet flush_rtt_ms;
  util::SampleSet flush_window_depth;

  // ---- directory fan-out -------------------------------------------------
  std::uint64_t updates_seen = 0;
  std::uint64_t push_rpcs = 0;
  std::uint64_t push_updates = 0;
  std::uint64_t push_bytes = 0;
  // Versus the naive one-request-per-replica-per-update fan-out.
  std::uint64_t push_rpcs_saved = 0;
  std::uint64_t push_bytes_saved = 0;
  std::uint64_t batches_shared = 0;
  std::uint64_t replicas_evicted = 0;

  util::SampleSet push_batch_updates;

  std::string report() const;
};

}  // namespace psf::runtime
