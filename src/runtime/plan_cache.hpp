// Access-path plan cache (DESIGN.md "Access-path caching & coalescing").
//
// GenericServer::request_access keys completed access outcomes by a
// canonical fingerprint of the plan-affecting request fields (interface,
// client node, translated property requirements, power-of-two request-rate
// bucket, objective and search shape) plus a per-service environment epoch.
// A later identical request under the same epoch replays the stored outcome:
// the client shares the cached entry binding and pays neither planning nor
// deployment. Invalidation is epoch-based and lazy — refresh_environment and
// monitor-reported changes bump the epoch, which makes stale entries
// unfindable; the next lookup that touches one erases it, so invalidation
// never scans the cache. Liveness and capacity headroom are re-checked by
// the generic server on every hit (a cached plan must not hand out a
// binding to a crashed, retired, or saturated instance).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "planner/plan.hpp"
#include "planner/planner.hpp"
#include "runtime/component.hpp"
#include "util/stats.hpp"

namespace psf::runtime {

// Cache behavior counters and the cached-vs-cold latency distributions,
// owned by the GenericServer and rendered by runtime/telemetry.
struct PlanCacheTelemetry {
  std::uint64_t hits = 0;
  // Accesses that found no usable entry (absent, stale epoch, or evicted by
  // the hit-time liveness/capacity validation) and ran the cold path.
  // Coalesced waiters ride an in-flight cold plan and count only below.
  std::uint64_t misses = 0;
  // Requests that attached as waiters to an identical in-flight access.
  std::uint64_t coalesced = 0;
  // Entries discarded for any reason (sum of the eviction breakdown plus
  // instance-retirement evictions).
  std::uint64_t invalidations = 0;
  std::uint64_t stale_epoch_evictions = 0;
  std::uint64_t liveness_evictions = 0;
  std::uint64_t capacity_evictions = 0;
  std::uint64_t epoch_bumps = 0;
  std::uint64_t inserts = 0;

  // Simulated planning + deployment time per access (ms). Warm accesses are
  // zero by construction — the histogram shows the amortization.
  util::SampleSet cold_access_ms;
  util::SampleSet warm_access_ms;

  std::string report() const;
};

// Request-rate bucketing for the fingerprint: rates within the same
// power-of-two ceiling share a cache entry (a 40 rps and a 60 rps client
// both plan as "<= 64"), so the cache is not defeated by jittery rates
// while order-of-magnitude differences still plan separately.
std::uint64_t plan_rate_bucket(double rps);

// Canonical fingerprint of the plan-affecting request fields. Property
// requirements are sorted, so declaration order does not split the cache.
// search_threads and bound_pruning are deliberately excluded: the planner's
// result is bit-identical regardless of either (see DESIGN.md "Planner
// search strategy"). search_mode, cluster_count, chain_dp and
// deadline_budget are excluded too: they change how hard the planner works,
// not what the request asks for — a deadline-truncated entry is later
// hot-swapped toward the full-search plan by the background improver
// (GenericServer::drain_improvements), under the same epoch discipline that
// keeps every other entry honest. The principal is represented by its translated
// properties, which the generic server merges into required_properties
// before fingerprinting — two principals with the same derived requirements
// share an entry.
std::string plan_fingerprint(const planner::PlanRequest& request);

// What a hit replays: the plan and the runtime instances backing each
// placement (index-aligned), plus the shared entry binding.
struct CachedAccess {
  planner::DeploymentPlan plan;
  std::vector<RuntimeInstanceId> instances;
  RuntimeInstanceId entry = 0;
};

class PlanCache {
 public:
  struct Entry {
    CachedAccess access;
    std::uint64_t epoch = 0;
    std::uint64_t hits = 0;
    std::uint64_t last_used = 0;  // LRU tick
  };

  explicit PlanCache(std::size_t max_entries = 256)
      : max_entries_(max_entries) {}

  // nullptr when no entry exists for `fingerprint` under `epoch`. An entry
  // created under an older epoch is erased here — lazy invalidation.
  Entry* find(const std::string& fingerprint, std::uint64_t epoch,
              PlanCacheTelemetry& telemetry);

  void insert(const std::string& fingerprint, std::uint64_t epoch,
              CachedAccess access, PlanCacheTelemetry& telemetry);

  // Drops one entry (hit-time validation failed). The caller counts the
  // specific eviction cause; this only maintains the aggregate.
  void erase(const std::string& fingerprint, PlanCacheTelemetry& telemetry);

  // Drops every entry whose outcome references `id` (the instance was
  // retired by redeployment or forgotten). Returns the number dropped.
  std::size_t evict_referencing(RuntimeInstanceId id,
                                PlanCacheTelemetry& telemetry);

  std::size_t size() const { return entries_.size(); }

 private:
  std::size_t max_entries_;
  std::uint64_t tick_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace psf::runtime
