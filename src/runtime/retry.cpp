#include "runtime/retry.hpp"

#include <sstream>

namespace psf::runtime {

std::string RetryTelemetry::report() const {
  std::ostringstream oss;
  oss << "retry: invokes=" << invokes << " attempts=" << attempts
      << " successes=" << successes << " failures=" << failures
      << " retries=" << retries << " rebinds=" << rebinds
      << " budget_exhausted=" << budget_exhausted << "\n";
  oss << "retry transport: timeouts=" << timeouts << " drops=" << drops
      << " unreachable=" << unreachable << " dead_targets=" << dead_targets
      << "\n";
  auto histo = [&oss](const char* label, const util::SampleSet& s) {
    oss << label << ": n=" << s.count();
    if (s.count() > 0) {
      util::SampleSet copy = s;  // percentile() sorts
      oss << " mean=" << s.mean() << "ms p50=" << copy.percentile(50)
          << "ms p95=" << copy.percentile(95) << "ms max=" << s.max() << "ms";
    }
    oss << "\n";
  };
  histo("retry backoff", backoff_ms);
  histo("failure detection", detection_ms);
  return oss.str();
}

}  // namespace psf::runtime
