// Network monitor (the paper's §6 Remos-style extension): the single place
// through which node/link properties change at run time. Every mutation
// fires observers so the framework can re-translate environments and decide
// whether an incremental or complete redeployment is called for.
#pragma once

#include <functional>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace psf::runtime {

class NetworkMonitor {
 public:
  enum class ChangeKind {
    kLinkBandwidth,
    kLinkLatency,
    kLinkCredential,
    kNodeCredential,
    kNodeCapacity,
    kNodeFailure,
    kLinkState,  // link went down (fail_link / partition) or came back up
    kLinkLoss,   // per-message drop probability changed
  };

  struct ChangeEvent {
    ChangeKind kind;
    net::LinkId link;  // valid for link changes
    net::NodeId node;  // valid for node changes
  };

  using Observer = std::function<void(const ChangeEvent&)>;

  NetworkMonitor(sim::Simulator& simulator, net::Network& network)
      : sim_(simulator), network_(network) {}

  void subscribe(Observer observer) {
    observers_.push_back(std::move(observer));
  }

  // Monotonic count of reported changes — a cheap "did the topology move"
  // probe for epoch-style consumers that do not need the event details.
  std::uint64_t change_count() const { return change_count_; }

  void set_link_bandwidth(net::LinkId link, double bps);
  void set_link_latency(net::LinkId link, sim::Duration latency);
  void set_link_credential(net::LinkId link, const std::string& name,
                           net::CredentialValue value);
  void set_node_credential(net::NodeId node, const std::string& name,
                           net::CredentialValue value);
  void set_node_capacity(net::NodeId node, double cpu_capacity);

  // Reports a node failure (observed or believed — lease expiry calls this
  // too). The monitor itself only notifies; callers that own a SmockRuntime
  // crash the instances and mark the node down (see Framework::crash_node /
  // fail_node, which do both).
  void report_node_failure(net::NodeId node);

  // Link fault injection. fail_link / heal_link flip the link's up state
  // (idempotent: re-failing a dead link does not notify); set_link_loss sets
  // the per-message drop probability. All three invalidate the route cache
  // via the Network mutators and fire observers.
  void fail_link(net::LinkId link);
  void heal_link(net::LinkId link);
  void set_link_loss(net::LinkId link, double loss);

  // Severs every live link with one endpoint in `side_a` and the other in
  // `side_b` (one kLinkState event per severed link). Returns the severed
  // links so the caller can heal exactly this cut later.
  std::vector<net::LinkId> partition(const std::vector<net::NodeId>& side_a,
                                     const std::vector<net::NodeId>& side_b);

  // Applies `change` after `delay` of simulated time (for scripted
  // experiments: "the slow link degrades at t=30s").
  void schedule_change(sim::Duration delay,
                       std::function<void(NetworkMonitor&)> change);

 private:
  void notify(const ChangeEvent& event) {
    ++change_count_;
    for (const auto& observer : observers_) observer(event);
  }

  sim::Simulator& sim_;
  net::Network& network_;
  std::vector<Observer> observers_;
  std::uint64_t change_count_ = 0;
};

}  // namespace psf::runtime
