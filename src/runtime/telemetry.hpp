// Windowed utilization telemetry over the runtime's cost accounting.
//
// Samples the cumulative busy time of every node CPU and link on a fixed
// period and converts deltas into per-window utilization. A window's
// utilization can exceed 1.0: the runtime's FIFO resources accept work
// faster than they drain it, so a value above 1 means the queue grew during
// that window — exactly the backlog signal the Fig. 7 coherence scenarios
// produce on the WAN link during a flush.
#pragma once

#include <string>
#include <vector>

#include "runtime/coherence_telemetry.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/retry.hpp"
#include "runtime/smock.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace psf::runtime {

struct ResourceUsage {
  std::string name;
  double mean_utilization = 0.0;
  double peak_utilization = 0.0;
  double busy_seconds = 0.0;  // total over the observation span
};

class Telemetry {
 public:
  Telemetry(SmockRuntime& runtime, sim::Duration sample_period)
      : runtime_(runtime),
        period_(sample_period),
        timer_(runtime.simulator(), sample_period, [this] { sample(); }) {}

  void start() {
    baseline();
    timer_.start();
  }
  void stop() { timer_.stop(); }

  std::size_t samples() const { return windows_; }

  // Usage per node / per link over all completed windows.
  std::vector<ResourceUsage> node_usage() const;
  std::vector<ResourceUsage> link_usage() const;

  // Attaches the generic server's plan-cache counters so report() includes
  // hit/miss/coalesce/invalidation rates and the cold-vs-warm latency
  // histogram. The pointer must outlive this Telemetry.
  void attach_plan_cache(const PlanCacheTelemetry* cache) {
    plan_cache_ = cache;
  }

  // Attaches the coherence data-path counters (replica write-back +
  // directory fan-out) so report() includes flush/push batching rates and
  // histograms. The pointer must outlive this Telemetry.
  void attach_coherence(const CoherenceTelemetry* coherence) {
    coherence_ = coherence;
  }

  // Attaches client-resilience counters (attempts/timeouts/drops, backoff +
  // detection-latency histograms) so report() includes the retry block.
  // The pointer must outlive this Telemetry.
  void attach_retry(const RetryTelemetry* retry) { retry_ = retry; }

  // Human-readable table of the busiest resources (plus the plan-cache
  // block when attached).
  std::string report(std::size_t top_n = 8) const;

 private:
  void baseline();
  void sample();

  SmockRuntime& runtime_;
  sim::Duration period_;
  sim::PeriodicTimer timer_;

  std::size_t windows_ = 0;
  std::vector<double> node_last_busy_;
  std::vector<double> link_last_busy_;
  std::vector<util::RunningStats> node_util_;
  std::vector<util::RunningStats> link_util_;
  const PlanCacheTelemetry* plan_cache_ = nullptr;
  const CoherenceTelemetry* coherence_ = nullptr;
  const RetryTelemetry* retry_ = nullptr;
};

}  // namespace psf::runtime
