#include "runtime/coherence_telemetry.hpp"

#include <sstream>

namespace psf::runtime {

namespace {

void sample_line(std::ostringstream& oss, const char* label,
                 const util::SampleSet& set) {
  util::SampleSet copy = set;  // percentile() sorts in place
  oss << "  " << label << ": n=" << copy.count();
  if (copy.count() > 0) {
    oss << " mean " << copy.mean() << " p50 " << copy.percentile(50.0)
        << " p99 " << copy.percentile(99.0) << " max " << copy.max();
  }
  oss << "\n";
}

}  // namespace

std::string CoherenceTelemetry::report() const {
  std::ostringstream oss;
  oss << "coherence data path\n"
      << "  write-back: recorded " << updates_recorded << " coalesced "
      << updates_coalesced << " (saved " << coalesced_bytes_saved
      << " B) flushes " << flushes << " updates " << updates_flushed
      << " bytes " << bytes_flushed << "\n"
      << "  failure path: rejected " << flushes_rejected << " requeued "
      << flushes_requeued << " dropped " << updates_dropped << "\n"
      << "  fan-out: seen " << updates_seen << " push rpcs " << push_rpcs
      << " (saved " << push_rpcs_saved << ") updates " << push_updates
      << " bytes " << push_bytes << " (saved " << push_bytes_saved
      << ") shared batches " << batches_shared << " evicted replicas "
      << replicas_evicted << "\n";
  sample_line(oss, "flush batch size [updates]", flush_batch_updates);
  sample_line(oss, "flush rtt [ms]", flush_rtt_ms);
  sample_line(oss, "flush window depth [batches]", flush_window_depth);
  sample_line(oss, "push batch size [updates]", push_batch_updates);
  return oss.str();
}

}  // namespace psf::runtime
