#include "runtime/generic.hpp"

#include <algorithm>
#include <chrono>

#include "util/logging.hpp"

namespace psf::runtime {

namespace {

// Resolves the declared implements properties of an initial placement (no
// downstream chain exists yet, so transparent inheritance contributes
// nothing — initial components are normally roots like MailServer anyway).
planner::EffectiveProps initial_effective(const spec::ServiceSpec& spec,
                                          const spec::ComponentDef& comp,
                                          const spec::Environment& node_env,
                                          const planner::FactorBindings& factors) {
  planner::EffectiveProps out;
  for (const spec::LinkageDecl& decl : comp.implements) {
    const spec::InterfaceDef* iface = spec.find_interface(decl.interface_name);
    PSF_CHECK(iface != nullptr);
    auto& props = out[decl.interface_name];
    for (const std::string& prop : iface->properties) {
      auto expr = decl.value_of(prop);
      if (!expr) continue;
      spec::PropertyValue value;
      switch (expr->kind) {
        case spec::ValueExpr::Kind::kLiteral:
          value = expr->literal;
          break;
        case spec::ValueExpr::Kind::kEnvRef:
          if (expr->env_scope == spec::EnvScope::kNode) {
            value = node_env.get(expr->ref_name)
                        .value_or(spec::PropertyValue());
          }
          break;
        case spec::ValueExpr::Kind::kFactorRef: {
          auto it = factors.values.find(expr->ref_name);
          if (it != factors.values.end()) value = it->second;
          break;
        }
        case spec::ValueExpr::Kind::kAny:
          break;
      }
      if (value.is_set()) props[prop] = value;
    }
  }
  return out;
}

}  // namespace

void GenericServer::register_service(
    ServiceRegistration registration,
    std::shared_ptr<const planner::PropertyTranslator> translator,
    std::function<void(util::Status)> ready) {
  if (auto st = registration.spec.validate(); !st) {
    ready(st);
    return;
  }
  const std::string name = registration.spec.name;
  if (services_.count(name) != 0) {
    ready(util::already_exists("service '" + name + "' already registered"));
    return;
  }

  auto state = std::make_unique<ServiceState>();
  state->registration = std::move(registration);
  state->translator = std::move(translator);
  state->env = std::make_unique<planner::EnvironmentView>(runtime_.network(),
                                                          *state->translator);
  state->planner = std::make_unique<planner::Planner>(
      state->registration.spec, *state->env);

  ServiceAdvertisement ad;
  ad.service_name = name;
  ad.attributes = state->registration.attributes;
  ad.server_host = host_;
  ad.proxy_code_bytes = state->registration.proxy_code_bytes;
  ad.server = this;
  if (auto st = lookup_.register_service(std::move(ad)); !st) {
    ready(st);
    return;
  }

  ServiceState* raw = state.get();
  services_.emplace(name, std::move(state));

  // Deploy initial placements. Installation is local to each node (the
  // service operator pre-stages its own components), so no code transfer.
  auto pending = std::make_shared<std::size_t>(
      raw->registration.initial_placements.size());
  auto first_error = std::make_shared<util::Status>();
  if (*pending == 0) {
    ready(util::Status::ok());
    return;
  }
  for (const InitialPlacement& ip : raw->registration.initial_placements) {
    const spec::ComponentDef* comp =
        raw->registration.spec.find_component(ip.component);
    if (comp == nullptr) {
      ready(util::not_found("initial placement references unknown component '" +
                            ip.component + "'"));
      return;
    }
    runtime_.install(
        *comp, ip.node, ip.factors, ip.node,
        [this, raw, comp, ip, pending, first_error,
         ready](util::Expected<RuntimeInstanceId> id) {
          --*pending;
          if (!id) {
            if (first_error->is_ok()) *first_error = id.status();
          } else {
            Instance& inst = runtime_.instance(*id);
            inst.effective = initial_effective(
                raw->registration.spec, *comp,
                raw->env->node_env(ip.node), ip.factors);
            inst.downstream_latency_s =
                comp->behaviors.cpu_per_request /
                runtime_.network().node(ip.node).cpu_capacity;
            auto st = runtime_.start(*id);
            PSF_CHECK_MSG(st.is_ok(), st.to_string());

            planner::ExistingInstance existing;
            existing.runtime_id = *id;
            existing.component = comp;
            existing.node = ip.node;
            existing.factors = ip.factors;
            existing.effective = inst.effective;
            existing.downstream_latency_s = inst.downstream_latency_s;
            existing.current_load_rps = 0.0;
            raw->existing.push_back(std::move(existing));
          }
          if (*pending == 0) ready(*first_error);
        });
  }
}

void GenericServer::request_access(
    const std::string& service, planner::PlanRequest request,
    std::function<void(util::Expected<AccessOutcome>)> done) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    done(util::not_found("service '" + service + "' not registered"));
    return;
  }
  if (!request.code_origin.valid()) {
    request.code_origin = state->registration.code_origin;
  }

  // Run the planner (host wall-clock measured for the benches), then charge
  // the equivalent CPU at this server's host before deploying.
  const auto wall_start = std::chrono::steady_clock::now();
  planner::SearchStats stats;
  auto plan = state->planner->plan(request, state->existing, &stats);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!plan) {
    done(plan.status());
    return;
  }

  const double planning_units =
      state->registration.planning_cpu_per_candidate *
      static_cast<double>(stats.candidates_examined);
  const sim::Time before_planning = runtime_.simulator().now();

  auto plan_value = std::make_shared<planner::DeploymentPlan>(
      std::move(plan).value());
  runtime_.charge_cpu(
      host_, planning_units,
      [this, state, plan_value, wall_seconds, before_planning,
       done = std::move(done)]() mutable {
        const sim::Time after_planning = runtime_.simulator().now();
        engine_.deploy(
            *plan_value, state->registration.code_origin,
            [this, state, plan_value, wall_seconds, before_planning,
             after_planning,
             done = std::move(done)](util::Expected<DeployedPlan> deployed) {
              if (!deployed) {
                done(deployed.status());
                return;
              }
              absorb_deployment(*state, *plan_value, *deployed);
              AccessOutcome outcome;
              outcome.entry = deployed->entry;
              outcome.plan = *plan_value;
              outcome.instances = deployed->instances;
              outcome.costs.planning = after_planning - before_planning;
              outcome.costs.deployment = deployed->elapsed;
              outcome.costs.planning_wall_seconds = wall_seconds;
              done(std::move(outcome));
            });
      });
}

void GenericServer::absorb_deployment(ServiceState& state,
                                      const planner::DeploymentPlan& plan,
                                      const DeployedPlan& deployed) {
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const planner::Placement& p = plan.placements[i];
    if (p.reuse_existing) {
      // Account the additional load on the reused instance.
      for (auto& existing : state.existing) {
        if (existing.runtime_id == p.existing_runtime_id) {
          existing.current_load_rps += p.inbound_rate_rps;
        }
      }
      continue;
    }
    if (p.id == plan.entry) continue;  // client-private entry component
    planner::ExistingInstance existing;
    existing.runtime_id = deployed.instances[i];
    existing.component = p.component;
    existing.node = p.node;
    existing.factors = p.factors;
    existing.effective = p.effective;
    existing.downstream_latency_s = p.expected_latency_s;
    existing.current_load_rps = p.inbound_rate_rps;
    state.existing.push_back(std::move(existing));
  }
}

util::Status GenericServer::refresh_environment(const std::string& service) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    return util::not_found("service '" + service + "' not registered");
  }
  state->env = std::make_unique<planner::EnvironmentView>(runtime_.network(),
                                                          *state->translator);
  state->planner = std::make_unique<planner::Planner>(
      state->registration.spec, *state->env);

  // Quarantine reusable instances the new environment no longer justifies:
  // an instance whose installation conditions fail, or whose factor
  // bindings no longer re-derive from its node's environment (e.g. a
  // trust-4 view on a node demoted to trust 3), must not be offered to
  // future plans. The instance keeps running — redeployment managers decide
  // when to retire it.
  auto factors_rederive = [&](const planner::ExistingInstance& inst) {
    for (const spec::PropertyAssignment& f : inst.component->factors) {
      spec::PropertyValue derived;
      switch (f.value.kind) {
        case spec::ValueExpr::Kind::kLiteral:
          derived = f.value.literal;
          break;
        case spec::ValueExpr::Kind::kEnvRef:
          if (f.value.env_scope == spec::EnvScope::kNode) {
            derived = state->env->node_env(inst.node)
                          .get(f.value.ref_name)
                          .value_or(spec::PropertyValue());
          }
          break;
        default:
          break;
      }
      auto it = inst.factors.values.find(f.property);
      if (it == inst.factors.values.end() || !(it->second == derived)) {
        return false;
      }
    }
    return true;
  };
  auto still_valid = [&](const planner::ExistingInstance& inst) {
    if (!runtime_.exists(inst.runtime_id)) return false;  // crashed/retired
    const spec::Environment& env = state->env->node_env(inst.node);
    for (const spec::Condition& cond : inst.component->conditions) {
      if (!cond.holds(env)) return false;
    }
    return factors_rederive(inst);
  };
  for (auto it = state->existing.begin(); it != state->existing.end();) {
    if (still_valid(*it)) {
      ++it;
    } else {
      PSF_INFO() << "environment refresh quarantines instance "
                 << it->runtime_id << " (" << it->component->name << " at "
                 << runtime_.network().node(it->node).name << ")";
      it = state->existing.erase(it);
    }
  }
  return util::Status::ok();
}

util::Status GenericServer::forget_instance(const std::string& service,
                                            RuntimeInstanceId id) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    return util::not_found("service '" + service + "' not registered");
  }
  for (auto it = state->existing.begin(); it != state->existing.end(); ++it) {
    if (it->runtime_id == id) {
      state->existing.erase(it);
      return util::Status::ok();
    }
  }
  return util::not_found("instance " + std::to_string(id) +
                         " not in the reusable pool");
}

util::Status GenericServer::release_load(const std::string& service,
                                         RuntimeInstanceId id,
                                         double rate_rps) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    return util::not_found("service '" + service + "' not registered");
  }
  for (auto& existing : state->existing) {
    if (existing.runtime_id == id) {
      existing.current_load_rps =
          std::max(0.0, existing.current_load_rps - rate_rps);
      return util::Status::ok();
    }
  }
  return util::not_found("instance " + std::to_string(id) +
                         " not in the reusable pool");
}

const std::vector<planner::ExistingInstance>& GenericServer::existing_instances(
    const std::string& service) const {
  static const std::vector<planner::ExistingInstance> kEmpty;
  const ServiceState* state = state_of(service);
  return state == nullptr ? kEmpty : state->existing;
}

const spec::ServiceSpec* GenericServer::service_spec(
    const std::string& service) const {
  const ServiceState* state = state_of(service);
  return state == nullptr ? nullptr : &state->registration.spec;
}

const planner::EnvironmentView* GenericServer::environment(
    const std::string& service) const {
  const ServiceState* state = state_of(service);
  return state == nullptr ? nullptr : state->env.get();
}

GenericServer::ServiceState* GenericServer::state_of(
    const std::string& service) {
  auto it = services_.find(service);
  return it == services_.end() ? nullptr : it->second.get();
}

const GenericServer::ServiceState* GenericServer::state_of(
    const std::string& service) const {
  auto it = services_.find(service);
  return it == services_.end() ? nullptr : it->second.get();
}

// ---- GenericProxy ----------------------------------------------------------

void GenericProxy::bind(std::function<void(util::Status)> done) {
  if (bound_) {
    done(util::Status::ok());
    return;
  }
  waiters_.push_back(std::move(done));
  if (binding_) return;  // an earlier bind is in flight; join it
  binding_ = true;

  const ServiceAdvertisement* ad = lookup_.find(service_);
  if (ad == nullptr || ad->server == nullptr) {
    binding_ = false;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) {
      w(util::not_found("service '" + service_ + "' not in lookup service"));
    }
    return;
  }

  const sim::Time t0 = runtime_.simulator().now();
  // Step 2 of Fig. 1: attribute query to the lookup node, proxy download
  // back to the client.
  runtime_.send_bytes(client_node_, lookup_.host(), 512, [this, ad, t0]() {
    runtime_.send_bytes(
        lookup_.host(), client_node_, ad->proxy_code_bytes, [this, ad, t0]() {
          const sim::Time lookup_done = runtime_.simulator().now();
          // Step 3: forward the access request (with credentials) to the
          // generic server.
          planner::PlanRequest request = defaults_;
          request.client_node = client_node_;
          runtime_.send_bytes(
              client_node_, ad->server_host, 1024,
              [this, ad, request, t0, lookup_done]() {
                ad->server->request_access(
                    service_, request,
                    [this, ad, t0,
                     lookup_done](util::Expected<AccessOutcome> outcome) {
                      if (!outcome) {
                        finish_bind(outcome.status());
                        return;
                      }
                      outcome_ = std::move(outcome).value();
                      outcome_.costs.lookup = lookup_done - t0;
                      // Small acknowledgement back to the client completes
                      // the generic→specific proxy swap.
                      runtime_.send_bytes(ad->server_host, client_node_, 256,
                                          [this]() {
                                            bound_ = true;
                                            finish_bind(util::Status::ok());
                                          });
                    });
              });
        });
  });
}

void GenericProxy::finish_bind(util::Status status) {
  binding_ = false;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& w : waiters) w(status);
}

void GenericProxy::invoke(Request request, ResponseCallback done) {
  if (!bound_) {
    bind([this, request = std::move(request),
          done = std::move(done)](util::Status st) mutable {
      if (!st) {
        done(Response::failure("bind failed: " + st.to_string()));
        return;
      }
      runtime_.invoke_from_node(client_node_, outcome_.entry,
                                std::move(request), std::move(done));
    });
    return;
  }
  runtime_.invoke_from_node(client_node_, outcome_.entry, std::move(request),
                            std::move(done));
}

}  // namespace psf::runtime
