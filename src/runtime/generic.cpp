// detlint:allow-file(DET004 plan-latency telemetry and anytime deadlines deliberately read the host clock)
#include "runtime/generic.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "runtime/monitor.hpp"
#include "util/logging.hpp"

namespace psf::runtime {

namespace {

// Resolves the declared implements properties of an initial placement (no
// downstream chain exists yet, so transparent inheritance contributes
// nothing — initial components are normally roots like MailServer anyway).
planner::EffectiveProps initial_effective(const spec::ServiceSpec& spec,
                                          const spec::ComponentDef& comp,
                                          const spec::Environment& node_env,
                                          const planner::FactorBindings& factors) {
  planner::EffectiveProps out;
  for (const spec::LinkageDecl& decl : comp.implements) {
    const spec::InterfaceDef* iface = spec.find_interface(decl.interface_name);
    PSF_CHECK(iface != nullptr);
    auto& props = out[decl.interface_name];
    for (const std::string& prop : iface->properties) {
      auto expr = decl.value_of(prop);
      if (!expr) continue;
      spec::PropertyValue value;
      switch (expr->kind) {
        case spec::ValueExpr::Kind::kLiteral:
          value = expr->literal;
          break;
        case spec::ValueExpr::Kind::kEnvRef:
          if (expr->env_scope == spec::EnvScope::kNode) {
            value = node_env.get(expr->ref_name)
                        .value_or(spec::PropertyValue());
          }
          break;
        case spec::ValueExpr::Kind::kFactorRef: {
          auto it = factors.values.find(expr->ref_name);
          if (it != factors.values.end()) value = it->second;
          break;
        }
        case spec::ValueExpr::Kind::kAny:
          break;
      }
      if (value.is_set()) props[prop] = value;
    }
  }
  return out;
}

}  // namespace

void GenericServer::register_service(
    ServiceRegistration registration,
    std::shared_ptr<const planner::PropertyTranslator> translator,
    std::function<void(util::Status)> ready) {
  if (auto st = registration.spec.validate(); !st) {
    ready(st);
    return;
  }
  const std::string name = registration.spec.name;
  if (services_.count(name) != 0) {
    ready(util::already_exists("service '" + name + "' already registered"));
    return;
  }

  auto state = std::make_unique<ServiceState>();
  state->registration = std::move(registration);
  state->translator = std::move(translator);
  state->env = std::make_unique<planner::EnvironmentView>(runtime_.network(),
                                                          *state->translator);
  state->planner = std::make_unique<planner::Planner>(
      state->registration.spec, *state->env);

  ServiceAdvertisement ad;
  ad.service_name = name;
  ad.attributes = state->registration.attributes;
  ad.server_host = host_;
  ad.proxy_code_bytes = state->registration.proxy_code_bytes;
  ad.server = this;
  if (auto st = lookup_.register_service(std::move(ad)); !st) {
    ready(st);
    return;
  }

  ServiceState* raw = state.get();
  services_.emplace(name, std::move(state));

  // Deploy initial placements. Installation is local to each node (the
  // service operator pre-stages its own components), so no code transfer.
  auto pending = std::make_shared<std::size_t>(
      raw->registration.initial_placements.size());
  auto first_error = std::make_shared<util::Status>();
  if (*pending == 0) {
    ready(util::Status::ok());
    return;
  }
  for (const InitialPlacement& ip : raw->registration.initial_placements) {
    const spec::ComponentDef* comp =
        raw->registration.spec.find_component(ip.component);
    if (comp == nullptr) {
      ready(util::not_found("initial placement references unknown component '" +
                            ip.component + "'"));
      return;
    }
    runtime_.install(
        *comp, ip.node, ip.factors, ip.node,
        [this, raw, comp, ip, pending, first_error,
         ready](util::Expected<RuntimeInstanceId> id) {
          --*pending;
          if (!id) {
            if (first_error->is_ok()) *first_error = id.status();
          } else {
            Instance& inst = runtime_.instance(*id);
            inst.effective = initial_effective(
                raw->registration.spec, *comp,
                raw->env->node_env(ip.node), ip.factors);
            inst.downstream_latency_s =
                comp->behaviors.cpu_per_request /
                runtime_.network().node(ip.node).cpu_capacity;
            auto st = runtime_.start(*id);
            PSF_CHECK_MSG(st.is_ok(), st.to_string());

            planner::ExistingInstance existing;
            existing.runtime_id = *id;
            existing.component = comp;
            existing.node = ip.node;
            existing.factors = ip.factors;
            existing.effective = inst.effective;
            existing.downstream_latency_s = inst.downstream_latency_s;
            existing.current_load_rps = 0.0;
            raw->existing.push_back(std::move(existing));
          }
          if (*pending == 0) ready(*first_error);
        });
  }
}

void GenericServer::request_access(
    const std::string& service, planner::PlanRequest request,
    std::function<void(util::Expected<AccessOutcome>)> done) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    done(util::not_found("service '" + service + "' not registered"));
    return;
  }
  if (!request.code_origin.valid()) {
    request.code_origin = state->registration.code_origin;
  }
  // The service's anytime deadline caps cold-access planning unless the
  // client set its own budget. Excluded from the fingerprint on purpose: a
  // truncated and a complete search answer the same logical request, and the
  // background improver converges the cached entry to the full-search plan.
  if (request.deadline_budget <= 0.0 &&
      state->registration.anytime_deadline_s > 0.0) {
    request.deadline_budget = state->registration.anytime_deadline_s;
  }
  merge_principal_requirements(*state, request);
  const std::string fingerprint = plan_fingerprint(request);

  // Warm path: an identical client already holds a validated access path.
  if (try_cached_access(*state, fingerprint, done)) return;

  // Coalesce: an identical access is being planned/deployed right now —
  // attach as a waiter instead of running the planner again (the
  // "thundering herd" on a newly advertised service).
  if (auto it = state->inflight.find(fingerprint);
      it != state->inflight.end()) {
    ++cache_telemetry_.coalesced;
    it->second->waiters.push_back(std::move(done));
    return;
  }
  // Neither cached nor in flight: this access runs the cold path and is the
  // one that counts as a miss (coalesced waiters above do not).
  ++cache_telemetry_.misses;
  auto flight = std::make_shared<InFlightAccess>();
  flight->epoch_at_start = state->epoch;
  state->inflight.emplace(fingerprint, flight);

  // Lazily retire pooled instances stranded by a crash upstream: alive but
  // wired (transitively) to a dead instance. Without detection enabled no
  // monitor event fires, so this hit-time sweep is what keeps replans from
  // rebuilding the same broken chain.
  for (auto it = state->existing.begin(); it != state->existing.end();) {
    if (runtime_.has_dangling_wires(it->runtime_id)) {
      PSF_INFO() << "retiring pooled instance " << it->runtime_id << " ("
                 << it->component->name << "): dangling wire downstream";
      state->cache.evict_referencing(it->runtime_id, cache_telemetry_);
      it = state->existing.erase(it);
    } else {
      ++it;
    }
  }

  // Cold path: run the planner (host wall-clock measured for the benches),
  // then charge the equivalent CPU at this server's host before deploying.
  const auto wall_start = std::chrono::steady_clock::now();
  planner::SearchStats stats;
  auto plan = state->planner->plan(request, state->existing, &stats);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!plan) {
    finish_access(*state, fingerprint, flight, std::move(done),
                  plan.status());
    return;
  }

  const double planning_units =
      state->registration.planning_cpu_per_candidate *
      static_cast<double>(stats.candidates_examined);
  const sim::Time before_planning = runtime_.simulator().now();

  auto plan_value = std::make_shared<planner::DeploymentPlan>(
      std::move(plan).value());
  runtime_.charge_cpu(
      host_, planning_units,
      [this, state, plan_value, wall_seconds, before_planning, stats,
       fingerprint, flight, request = std::move(request),
       done = std::move(done)]() mutable {
        const sim::Time after_planning = runtime_.simulator().now();
        engine_.deploy(
            *plan_value, state->registration.code_origin,
            [this, state, plan_value, wall_seconds, before_planning,
             after_planning, stats, fingerprint, flight,
             request = std::move(request),
             done = std::move(done)](util::Expected<DeployedPlan> deployed) {
              if (!deployed) {
                finish_access(*state, fingerprint, flight, std::move(done),
                              deployed.status());
                return;
              }
              absorb_deployment(*state, *plan_value, *deployed);
              if (stats.deadline_hit) {
                // The deadline truncated this search; queue a full replan so
                // drain_improvements can hot-swap a better plan in later.
                ImprovementJob job;
                job.service = state->registration.spec.name;
                job.fingerprint = fingerprint;
                job.request = request;
                job.epoch_at_enqueue = state->epoch;
                improvements_.push_back(std::move(job));
                ++anytime_telemetry_.jobs_enqueued;
              }
              AccessOutcome outcome;
              outcome.entry = deployed->entry;
              outcome.plan = *plan_value;
              outcome.instances = deployed->instances;
              outcome.costs.planning = after_planning - before_planning;
              outcome.costs.deployment = deployed->elapsed;
              outcome.costs.planning_wall_seconds = wall_seconds;
              outcome.search = stats;
              finish_access(*state, fingerprint, flight, std::move(done),
                            std::move(outcome));
            });
      });
}

void GenericServer::request_repair(
    const std::string& service, planner::PlanRequest request,
    const planner::DeploymentPlan& old_plan,
    const std::vector<planner::RepairViolation>& violations,
    std::function<void(util::Expected<AccessOutcome>)> done,
    planner::RepairOutcome* repair_outcome) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    done(util::not_found("service '" + service + "' not registered"));
    return;
  }
  if (!request.code_origin.valid()) {
    request.code_origin = state->registration.code_origin;
  }
  merge_principal_requirements(*state, request);
  const std::string fingerprint = plan_fingerprint(request);
  ++repair_telemetry_.repairs_attempted;

  // An identical access (or repair) is already in flight: ride it. This is
  // how a client rebinding mid-repair and the controller's own repair
  // converge on one planner run.
  if (auto it = state->inflight.find(fingerprint);
      it != state->inflight.end()) {
    ++cache_telemetry_.coalesced;
    it->second->waiters.push_back(std::move(done));
    return;
  }
  auto flight = std::make_shared<InFlightAccess>();
  flight->epoch_at_start = state->epoch;
  state->inflight.emplace(fingerprint, flight);

  // Same stranded-instance sweep as the cold path: the violation that
  // triggered this repair usually left pooled instances wired to dead ones.
  for (auto it = state->existing.begin(); it != state->existing.end();) {
    if (runtime_.has_dangling_wires(it->runtime_id)) {
      PSF_INFO() << "retiring pooled instance " << it->runtime_id << " ("
                 << it->component->name << "): dangling wire downstream";
      state->cache.evict_referencing(it->runtime_id, cache_telemetry_);
      it = state->existing.erase(it);
    } else {
      ++it;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  planner::RepairOutcome repair_stats;
  auto plan = state->planner->repair(request, old_plan, violations,
                                     state->existing, &repair_stats);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  repair_telemetry_.repair_wall_ms.add(wall_seconds * 1000.0);
  if (repair_stats.fell_back_to_full) ++repair_telemetry_.full_fallbacks;
  if (repair_outcome != nullptr) *repair_outcome = repair_stats;
  if (!plan) {
    finish_access(*state, fingerprint, flight, std::move(done),
                  plan.status());
    return;
  }

  const double planning_units =
      state->registration.planning_cpu_per_candidate *
      static_cast<double>(repair_stats.stats.candidates_examined);
  const sim::Time before_planning = runtime_.simulator().now();

  auto plan_value = std::make_shared<planner::DeploymentPlan>(
      std::move(plan).value());
  runtime_.charge_cpu(
      host_, planning_units,
      [this, state, plan_value, wall_seconds, before_planning,
       stats = repair_stats.stats, fingerprint, flight,
       done = std::move(done)]() mutable {
        const sim::Time after_planning = runtime_.simulator().now();
        engine_.deploy(
            *plan_value, state->registration.code_origin,
            [this, state, plan_value, wall_seconds, before_planning,
             after_planning, stats, fingerprint, flight,
             done = std::move(done)](util::Expected<DeployedPlan> deployed) {
              if (!deployed) {
                finish_access(*state, fingerprint, flight, std::move(done),
                              deployed.status());
                return;
              }
              absorb_deployment(*state, *plan_value, *deployed);
              ++repair_telemetry_.repairs_succeeded;
              AccessOutcome outcome;
              outcome.entry = deployed->entry;
              outcome.plan = *plan_value;
              outcome.instances = deployed->instances;
              outcome.costs.planning = after_planning - before_planning;
              outcome.costs.deployment = deployed->elapsed;
              outcome.costs.planning_wall_seconds = wall_seconds;
              outcome.search = stats;
              finish_access(*state, fingerprint, flight, std::move(done),
                            std::move(outcome));
            });
      });
}

void GenericServer::merge_principal_requirements(
    ServiceState& state, planner::PlanRequest& request) const {
  if (request.principal.empty()) return;
  const spec::Environment& derived =
      state.env->principal_env(request.principal);
  for (const auto& [prop, value] : derived.all()) {
    const bool present = std::any_of(
        request.required_properties.begin(),
        request.required_properties.end(),
        [&prop](const auto& entry) { return entry.first == prop; });
    // Explicit requirements win: the principal's credentials only add
    // properties the client did not already demand.
    if (!present) request.required_properties.emplace_back(prop, value);
  }
}

bool GenericServer::try_cached_access(
    ServiceState& state, const std::string& fingerprint,
    std::function<void(util::Expected<AccessOutcome>)>& done) {
  const auto wall_start = std::chrono::steady_clock::now();
  PlanCache::Entry* entry =
      state.cache.find(fingerprint, state.epoch, cache_telemetry_);
  if (entry == nullptr) return false;

  // Hit-time validation. Epoch matching proved the environment unchanged,
  // but the instance population moves independently of it: crashes,
  // uninstalls, redeployment retirements (forget_instance), and load added
  // by other plans since the entry was created.
  enum class Evict { kNone, kLiveness, kCapacity };
  Evict evict = Evict::kNone;
  for (RuntimeInstanceId id : entry->access.instances) {
    // Dead, or alive but wired (transitively) to a dead instance: either way
    // the cached path cannot serve and must be replanned.
    if (runtime_.has_dangling_wires(id)) {
      evict = Evict::kLiveness;
      break;
    }
  }
  if (evict == Evict::kNone) {
    const planner::DeploymentPlan& plan = entry->access.plan;
    for (std::size_t i = 0; i < plan.placements.size(); ++i) {
      const planner::Placement& p = plan.placements[i];
      if (p.id == plan.entry) continue;  // client-private, never pooled
      const planner::ExistingInstance* pooled = nullptr;
      for (const planner::ExistingInstance& inst : state.existing) {
        if (inst.runtime_id == entry->access.instances[i]) {
          pooled = &inst;
          break;
        }
      }
      if (pooled == nullptr) {
        // Forgotten (retired by redeployment) — must not be handed out.
        evict = Evict::kLiveness;
        break;
      }
      // Mirror the planner's instance-capacity condition (§3.3 condition 3):
      // admitting this client must not oversubscribe a shared component.
      const double capacity = p.component->behaviors.capacity_rps;
      if (capacity > 0.0 &&
          pooled->current_load_rps + p.inbound_rate_rps > capacity) {
        evict = Evict::kCapacity;
        break;
      }
    }
  }
  if (evict != Evict::kNone) {
    if (evict == Evict::kLiveness) {
      ++cache_telemetry_.liveness_evictions;
    } else {
      ++cache_telemetry_.capacity_evictions;
    }
    state.cache.erase(fingerprint, cache_telemetry_);
    return false;  // fall through to a cold replan
  }

  // Hit: replay the stored outcome. The client shares the cached entry
  // binding; no planning, no deployment, no CPU charged at the server.
  ++cache_telemetry_.hits;
  ++entry->hits;
  account_access_load(state, entry->access.plan, entry->access.instances);
  AccessOutcome outcome;
  outcome.entry = entry->access.entry;
  outcome.plan = entry->access.plan;
  outcome.instances = entry->access.instances;
  outcome.cache_hit = true;
  outcome.costs.planning_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  cache_telemetry_.warm_access_ms.add(
      (outcome.costs.planning + outcome.costs.deployment).millis());
  done(std::move(outcome));
  return true;
}

void GenericServer::account_access_load(
    ServiceState& state, const planner::DeploymentPlan& plan,
    const std::vector<RuntimeInstanceId>& instances) {
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const planner::Placement& p = plan.placements[i];
    if (p.id == plan.entry) continue;
    for (planner::ExistingInstance& existing : state.existing) {
      if (existing.runtime_id == instances[i]) {
        existing.current_load_rps += p.inbound_rate_rps;
        break;
      }
    }
  }
}

void GenericServer::finish_access(
    ServiceState& state, const std::string& fingerprint,
    const std::shared_ptr<InFlightAccess>& flight,
    std::function<void(util::Expected<AccessOutcome>)> primary,
    util::Expected<AccessOutcome> result) {
  // Release the slot and publish into the cache BEFORE invoking callbacks:
  // a callback may synchronously issue another identical access, which
  // should now hit the cache rather than re-coalesce on a dead flight.
  state.inflight.erase(fingerprint);
  auto waiters = std::move(flight->waiters);
  flight->waiters.clear();

  if (result) {
    cache_telemetry_.cold_access_ms.add(
        (result->costs.planning + result->costs.deployment).millis());
    if (state.epoch == flight->epoch_at_start) {
      CachedAccess cached;
      cached.plan = result->plan;
      cached.instances = result->instances;
      cached.entry = result->entry;
      state.cache.insert(fingerprint, state.epoch, std::move(cached),
                         cache_telemetry_);
    }
    // Each waiter is a distinct client riding the same deployment: account
    // its load on the shared placements exactly as a cache hit would.
    primary(util::Expected<AccessOutcome>(result.value()));
    for (auto& waiter : waiters) {
      account_access_load(state, result->plan, result->instances);
      AccessOutcome copy = result.value();
      copy.coalesced = true;
      waiter(std::move(copy));
    }
  } else {
    primary(result.status());
    for (auto& waiter : waiters) waiter(result.status());
  }
}

void GenericServer::absorb_deployment(ServiceState& state,
                                      const planner::DeploymentPlan& plan,
                                      const DeployedPlan& deployed) {
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const planner::Placement& p = plan.placements[i];
    if (p.reuse_existing) {
      // Account the additional load on the reused instance.
      for (auto& existing : state.existing) {
        if (existing.runtime_id == p.existing_runtime_id) {
          existing.current_load_rps += p.inbound_rate_rps;
        }
      }
      continue;
    }
    if (p.id == plan.entry) continue;  // client-private entry component
    planner::ExistingInstance existing;
    existing.runtime_id = deployed.instances[i];
    existing.component = p.component;
    existing.node = p.node;
    existing.factors = p.factors;
    existing.effective = p.effective;
    existing.downstream_latency_s = p.expected_latency_s;
    existing.current_load_rps = p.inbound_rate_rps;
    state.existing.push_back(std::move(existing));
  }
}

void GenericServer::drain_improvements(std::function<void()> done) {
  run_improvement(std::move(done));
}

void GenericServer::run_improvement(std::function<void()> done) {
  if (improvements_.empty()) {
    done();
    return;
  }
  ImprovementJob job = std::move(improvements_.front());
  improvements_.pop_front();

  ServiceState* state = state_of(job.service);
  if (state == nullptr || state->epoch != job.epoch_at_enqueue) {
    // The environment moved since the truncated access: its cached entry is
    // already unreplayable (epoch mismatch), so an "improvement" planned
    // against the old world must never be installed.
    ++anytime_telemetry_.discarded_stale;
    run_improvement(std::move(done));
    return;
  }
  PlanCache::Entry* entry =
      state->cache.find(job.fingerprint, state->epoch, cache_telemetry_);
  if (entry == nullptr) {
    // Entry never landed (epoch raced the deploy) or was evicted since;
    // nobody can bind it, so there is nothing to improve.
    ++anytime_telemetry_.discarded_stale;
    run_improvement(std::move(done));
    return;
  }
  const double incumbent_score = planner::plan_primary_score(
      job.request.objective, entry->access.plan.metrics);

  planner::PlanRequest request = job.request;
  request.deadline_budget = 0.0;  // background: plan to completion
  planner::SearchStats stats;
  auto plan = state->planner->plan(request, state->existing, &stats);
  if (!plan) {
    ++anytime_telemetry_.no_better;
    run_improvement(std::move(done));
    return;
  }
  const double improved_score =
      planner::plan_primary_score(request.objective, plan->metrics);
  if (!(improved_score < incumbent_score - 1e-12)) {
    ++anytime_telemetry_.no_better;
    run_improvement(std::move(done));
    return;
  }

  auto plan_value =
      std::make_shared<planner::DeploymentPlan>(std::move(plan).value());
  engine_.deploy(
      *plan_value, state->registration.code_origin,
      [this, job = std::move(job), plan_value, improved_score,
       done = std::move(done)](util::Expected<DeployedPlan> deployed) mutable {
        if (!deployed) {
          // The improvement failed to deploy (e.g. a node died mid-transfer);
          // the truncated plan keeps serving, the job is dropped.
          ++anytime_telemetry_.discarded_stale;
          run_improvement(std::move(done));
          return;
        }
        // Deployment took simulated time: re-check the epoch AND the entry
        // before swapping, exactly like finish_access does for cold plans.
        ServiceState* fresh_state = state_of(job.service);
        if (fresh_state == nullptr ||
            fresh_state->epoch != job.epoch_at_enqueue) {
          ++anytime_telemetry_.discarded_stale;
          run_improvement(std::move(done));
          return;
        }
        PlanCache::Entry* fresh_entry = fresh_state->cache.find(
            job.fingerprint, fresh_state->epoch, cache_telemetry_);
        if (fresh_entry == nullptr) {
          ++anytime_telemetry_.discarded_stale;
          run_improvement(std::move(done));
          return;
        }
        const double current = planner::plan_primary_score(
            job.request.objective, fresh_entry->access.plan.metrics);
        if (!(improved_score < current - 1e-12)) {
          // The entry improved past us while we were deploying; refusing the
          // install keeps per-fingerprint swap scores monotonically
          // non-increasing.
          ++anytime_telemetry_.nonmonotonic_refused;
          run_improvement(std::move(done));
          return;
        }
        absorb_deployment(*fresh_state, *plan_value, *deployed);
        CachedAccess cached;
        cached.plan = *plan_value;
        cached.instances = deployed->instances;
        cached.entry = deployed->entry;
        fresh_state->cache.insert(job.fingerprint, fresh_state->epoch,
                                  std::move(cached), cache_telemetry_);
        ++anytime_telemetry_.improved_swaps;
        anytime_telemetry_.swap_primary_scores.push_back(improved_score);
        PSF_INFO() << "anytime improver swapped access path for '"
                   << job.service << "' (primary " << current << " -> "
                   << improved_score << ")";
        run_improvement(std::move(done));
      });
}

util::Status GenericServer::refresh_environment(const std::string& service) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    return util::not_found("service '" + service + "' not registered");
  }
  // The world the cached plans were computed against is gone: bump the
  // epoch so they lazily invalidate. Rebuilding the view also resets the
  // per-principal translation memo.
  ++state->epoch;
  ++cache_telemetry_.epoch_bumps;
  state->env = std::make_unique<planner::EnvironmentView>(runtime_.network(),
                                                          *state->translator);
  state->planner = std::make_unique<planner::Planner>(
      state->registration.spec, *state->env);

  // Quarantine reusable instances the new environment no longer justifies:
  // an instance whose installation conditions fail, or whose factor
  // bindings no longer re-derive from its node's environment (e.g. a
  // trust-4 view on a node demoted to trust 3), must not be offered to
  // future plans. The instance keeps running — redeployment managers decide
  // when to retire it.
  auto factors_rederive = [&](const planner::ExistingInstance& inst) {
    for (const spec::PropertyAssignment& f : inst.component->factors) {
      spec::PropertyValue derived;
      switch (f.value.kind) {
        case spec::ValueExpr::Kind::kLiteral:
          derived = f.value.literal;
          break;
        case spec::ValueExpr::Kind::kEnvRef:
          if (f.value.env_scope == spec::EnvScope::kNode) {
            derived = state->env->node_env(inst.node)
                          .get(f.value.ref_name)
                          .value_or(spec::PropertyValue());
          }
          break;
        default:
          break;
      }
      auto it = inst.factors.values.find(f.property);
      if (it == inst.factors.values.end() || !(it->second == derived)) {
        return false;
      }
    }
    return true;
  };
  auto still_valid = [&](const planner::ExistingInstance& inst) {
    if (!runtime_.exists(inst.runtime_id)) return false;  // crashed/retired
    const spec::Environment& env = state->env->node_env(inst.node);
    for (const spec::Condition& cond : inst.component->conditions) {
      if (!cond.holds(env)) return false;
    }
    return factors_rederive(inst);
  };
  for (auto it = state->existing.begin(); it != state->existing.end();) {
    if (still_valid(*it)) {
      ++it;
    } else {
      PSF_INFO() << "environment refresh quarantines instance "
                 << it->runtime_id << " (" << it->component->name << " at "
                 << runtime_.network().node(it->node).name << ")";
      it = state->existing.erase(it);
    }
  }
  return util::Status::ok();
}

util::Status GenericServer::forget_instance(const std::string& service,
                                            RuntimeInstanceId id) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    return util::not_found("service '" + service + "' not registered");
  }
  for (auto it = state->existing.begin(); it != state->existing.end(); ++it) {
    if (it->runtime_id == id) {
      state->existing.erase(it);
      // A cached plan that hands out a binding to the retired instance must
      // never be replayed; the hit-time pool check would also catch it, but
      // eager eviction keeps the cache honest for diagnostics.
      state->cache.evict_referencing(id, cache_telemetry_);
      return util::Status::ok();
    }
  }
  return util::not_found("instance " + std::to_string(id) +
                         " not in the reusable pool");
}

util::Status GenericServer::release_load(const std::string& service,
                                         RuntimeInstanceId id,
                                         double rate_rps) {
  ServiceState* state = state_of(service);
  if (state == nullptr) {
    return util::not_found("service '" + service + "' not registered");
  }
  for (auto& existing : state->existing) {
    if (existing.runtime_id == id) {
      existing.current_load_rps =
          std::max(0.0, existing.current_load_rps - rate_rps);
      return util::Status::ok();
    }
  }
  return util::not_found("instance " + std::to_string(id) +
                         " not in the reusable pool");
}

const std::vector<planner::ExistingInstance>& GenericServer::existing_instances(
    const std::string& service) const {
  static const std::vector<planner::ExistingInstance> kEmpty;
  const ServiceState* state = state_of(service);
  return state == nullptr ? kEmpty : state->existing;
}

void GenericServer::invalidate_cached_plans() {
  for (auto& [name, state] : services_) ++state->epoch;
  ++cache_telemetry_.epoch_bumps;
}

void GenericServer::attach_monitor(NetworkMonitor& monitor) {
  monitor.subscribe([this](const NetworkMonitor::ChangeEvent& event) {
    invalidate_cached_plans();
    if (event.kind != NetworkMonitor::ChangeKind::kNodeFailure) return;
    // A reported node failure eagerly retires every pooled instance hosted
    // there and evicts cached plans that hand out bindings to them. The
    // epoch bump above already makes those entries stale; eager eviction
    // means no replay window exists even for requests racing the refresh.
    for (auto& [name, state] : services_) {
      for (auto it = state->existing.begin(); it != state->existing.end();) {
        if (it->node == event.node) {
          const RuntimeInstanceId dead = it->runtime_id;
          PSF_INFO() << "node-failure report retires pooled instance " << dead
                     << " (" << it->component->name << ")";
          it = state->existing.erase(it);
          state->cache.evict_referencing(dead, cache_telemetry_);
        } else {
          ++it;
        }
      }
    }
  });
}

std::uint64_t GenericServer::environment_epoch(
    const std::string& service) const {
  const ServiceState* state = state_of(service);
  return state == nullptr ? 0 : state->epoch;
}

std::size_t GenericServer::plan_cache_size(const std::string& service) const {
  const ServiceState* state = state_of(service);
  return state == nullptr ? 0 : state->cache.size();
}

const spec::ServiceSpec* GenericServer::service_spec(
    const std::string& service) const {
  const ServiceState* state = state_of(service);
  return state == nullptr ? nullptr : &state->registration.spec;
}

const planner::EnvironmentView* GenericServer::environment(
    const std::string& service) const {
  const ServiceState* state = state_of(service);
  return state == nullptr ? nullptr : state->env.get();
}

GenericServer::ServiceState* GenericServer::state_of(
    const std::string& service) {
  auto it = services_.find(service);
  return it == services_.end() ? nullptr : it->second.get();
}

const GenericServer::ServiceState* GenericServer::state_of(
    const std::string& service) const {
  auto it = services_.find(service);
  return it == services_.end() ? nullptr : it->second.get();
}

// ---- GenericProxy ----------------------------------------------------------

void GenericProxy::bind(std::function<void(util::Status)> done) {
  if (bound_) {
    done(util::Status::ok());
    return;
  }
  waiters_.push_back(std::move(done));
  if (binding_) return;  // an earlier bind is in flight; join it
  binding_ = true;

  // The registry that will serve the proxy code, and the node path the
  // query travels: client -> home shard [-> forwarding hops -> holder] in
  // sharded mode, client -> registry host otherwise.
  LookupService* registry = &lookup_;
  auto hops = std::make_shared<std::vector<net::NodeId>>();
  hops->push_back(client_node_);
  const ServiceAdvertisement* ad = nullptr;
  if (sharded_ != nullptr) {
    const LookupResolution res = sharded_->resolve(service_, client_node_);
    ad = res.ad;
    for (const std::size_t s : res.probe_path) {
      hops->push_back(sharded_->shard(s).host());
    }
    if (ad != nullptr) registry = &sharded_->shard(res.holder_shard);
  } else {
    ad = lookup_.find(service_);
    hops->push_back(lookup_.host());
  }
  if (ad == nullptr || ad->server == nullptr) {
    binding_ = false;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) {
      w(util::not_found("service '" + service_ + "' not in lookup service"));
    }
    return;
  }

  const sim::Time t0 = runtime_.simulator().now();
  // Step 2 of Fig. 1: attribute query to the lookup node (plus any
  // shard-to-shard forwarding legs), proxy download back to the client. A
  // node that already downloaded this service's proxy keeps it cached —
  // repeat binds from the site pay only a small freshness-check reply
  // instead of the full code transfer.
  const std::uint64_t download_bytes =
      registry->proxy_code_cached(service_, client_node_)
          ? kProxyRevalidateBytes
          : ad->proxy_code_bytes;
  walk_query_chain(hops, 0, [this, ad, t0, download_bytes, registry,
                             holder = hops->back()]() {
    runtime_.send_bytes(
        holder, client_node_, download_bytes, [this, ad, t0, registry]() {
          registry->note_proxy_download(service_, client_node_);
          const sim::Time lookup_done = runtime_.simulator().now();
          // Step 3: forward the access request (with credentials) to the
          // generic server.
          planner::PlanRequest request = defaults_;
          request.client_node = client_node_;
          runtime_.send_bytes(
              client_node_, ad->server_host, 1024,
              [this, ad, request, t0, lookup_done]() {
                ad->server->request_access(
                    service_, request,
                    [this, ad, t0,
                     lookup_done](util::Expected<AccessOutcome> outcome) {
                      if (!outcome) {
                        finish_bind(outcome.status());
                        return;
                      }
                      outcome_ = std::move(outcome).value();
                      outcome_.costs.lookup = lookup_done - t0;
                      // Small acknowledgement back to the client completes
                      // the generic→specific proxy swap.
                      runtime_.send_bytes(ad->server_host, client_node_, 256,
                                          [this]() {
                                            bound_ = true;
                                            finish_bind(util::Status::ok());
                                          });
                    });
              });
        });
  });
}

void GenericProxy::walk_query_chain(
    std::shared_ptr<std::vector<net::NodeId>> hops, std::size_t index,
    std::function<void()> then) {
  if (index + 1 >= hops->size()) {
    then();
    return;
  }
  const net::NodeId from = (*hops)[index];
  const net::NodeId to = (*hops)[index + 1];
  runtime_.send_bytes(from, to, 512,
                      [this, hops = std::move(hops), index,
                       then = std::move(then)]() mutable {
                        walk_query_chain(std::move(hops), index + 1,
                                         std::move(then));
                      });
}

void GenericProxy::use_sharded_lookup(ShardedLookupService& sharded) {
  sharded_ = &sharded;
  handle_ = ShardedLookupService::handle_for(service_);
}

void GenericProxy::finish_bind(util::Status status) {
  binding_ = false;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& w : waiters) w(status);
}

void GenericProxy::invoke(Request request, ResponseCallback done) {
  if (retry_) {
    auto call = std::make_shared<PendingInvoke>();
    call->request = std::move(request);
    call->done = std::move(done);
    call->deadline = policy_.overall_deadline.nanos() > 0
                         ? runtime_.simulator().now() + policy_.overall_deadline
                         : sim::Time::max();
    if (telemetry_ != nullptr) ++telemetry_->invokes;
    start_attempt(call);
    return;
  }
  if (!bound_) {
    bind([this, request = std::move(request),
          done = std::move(done)](util::Status st) mutable {
      if (!st) {
        done(Response::failure("bind failed: " + st.to_string()));
        return;
      }
      runtime_.invoke_from_node(client_node_, outcome_.entry,
                                std::move(request), std::move(done));
    });
    return;
  }
  runtime_.invoke_from_node(client_node_, outcome_.entry, std::move(request),
                            std::move(done));
}

void GenericProxy::enable_retries(RetryPolicy policy,
                                  RetryTelemetry* telemetry) {
  PSF_CHECK(policy.max_attempts >= 1);
  PSF_CHECK(policy.jitter >= 0.0 && policy.jitter < 1.0);
  retry_ = true;
  policy_ = policy;
  telemetry_ = telemetry;
  retry_rng_ = util::Rng(policy.seed ^
                         (static_cast<std::uint64_t>(client_node_.value) *
                          0x9E3779B97F4A7C15ULL));
}

void GenericProxy::start_attempt(const std::shared_ptr<PendingInvoke>& call) {
  ++call->attempts;
  if (telemetry_ != nullptr) {
    ++telemetry_->attempts;
    if (call->attempts > 1) ++telemetry_->retries;
  }
  if (bound_) {
    send_attempt(call);
    return;
  }
  // (Re)bind first. The bind handshake rides the same fabric as everything
  // else, so it is guarded by the attempt timeout: an unreachable registry
  // or server must fail the attempt, not hang the call forever.
  auto settled = std::make_shared<bool>(false);
  auto timer = std::make_shared<sim::EventId>(0);
  if (policy_.attempt_timeout.nanos() > 0) {
    *timer =
        runtime_.simulator().schedule(policy_.attempt_timeout, [this, call,
                                                                settled] {
          if (*settled) return;
          *settled = true;
          complete_attempt(call,
                           Response::transport_failure(
                               TransportError::kTimeout,
                               "bind did not complete within the attempt "
                               "timeout"));
        });
  }
  bind([this, call, settled, timer](util::Status st) {
    if (*settled) return;
    *settled = true;
    runtime_.simulator().cancel(*timer);
    if (!st) {
      // Application-level bind failure (unknown service, unsatisfiable
      // plan): final, not retryable.
      complete_attempt(call,
                       Response::failure("bind failed: " + st.to_string()));
      return;
    }
    send_attempt(call);
  });
}

void GenericProxy::send_attempt(const std::shared_ptr<PendingInvoke>& call) {
  runtime_.invoke_from_node(
      client_node_, outcome_.entry, call->request,
      [this, call](Response response) {
        complete_attempt(call, std::move(response));
      },
      policy_.attempt_timeout);
}

void GenericProxy::complete_attempt(
    const std::shared_ptr<PendingInvoke>& call, Response response) {
  if (response.ok || response.transport == TransportError::kNone) {
    // Success, or an application-level error — both final.
    if (telemetry_ != nullptr) {
      if (response.ok) {
        ++telemetry_->successes;
      } else {
        ++telemetry_->failures;
      }
    }
    call->done(std::move(response));
    return;
  }
  if (telemetry_ != nullptr) {
    switch (response.transport) {
      case TransportError::kTimeout: ++telemetry_->timeouts; break;
      case TransportError::kDropped: ++telemetry_->drops; break;
      case TransportError::kUnreachable: ++telemetry_->unreachable; break;
      case TransportError::kDeadTarget: ++telemetry_->dead_targets; break;
      case TransportError::kNone: break;
    }
  }

  // Capped exponential backoff with seeded jitter before the next attempt.
  const std::size_t shift = std::min<std::size_t>(call->attempts - 1, 20);
  double raw_ns = static_cast<double>(policy_.backoff_base.nanos()) *
                  static_cast<double>(std::uint64_t{1} << shift);
  raw_ns = std::min(raw_ns, static_cast<double>(policy_.backoff_cap.nanos()));
  const double jitter_factor =
      1.0 + policy_.jitter * (2.0 * retry_rng_.next_double() - 1.0);
  const sim::Duration backoff = sim::Duration::from_nanos(
      static_cast<std::int64_t>(raw_ns * jitter_factor));

  const bool attempts_left = call->attempts < policy_.max_attempts;
  const bool deadline_ok =
      runtime_.simulator().now() + backoff < call->deadline;
  if (!attempts_left || !deadline_ok) {
    if (telemetry_ != nullptr) {
      ++telemetry_->failures;
      ++telemetry_->budget_exhausted;
    }
    call->done(std::move(response));
    return;
  }

  if (policy_.rebind_on_unreachable && bound_ &&
      (response.transport == TransportError::kUnreachable ||
       response.transport == TransportError::kDeadTarget)) {
    // The binding points somewhere that cannot serve us; drop it and
    // re-request an access path on the next attempt. The server's plan
    // cache will not replay a path through dead instances (hit-time
    // liveness validation + failure-event eviction).
    bound_ = false;
    if (telemetry_ != nullptr) ++telemetry_->rebinds;
  }

  if (telemetry_ != nullptr) telemetry_->backoff_ms.add(backoff.millis());
  runtime_.simulator().schedule(backoff,
                                [this, call] { start_attempt(call); });
}

}  // namespace psf::runtime
