// Generic proxy and generic server (§3.2, steps 1–5 of Fig. 1).
//
// Service registration installs an advertisement + generic proxy in the
// lookup service and deploys the service's initial components (e.g. the
// MailServer at its home node). A client's GenericProxy, on first use,
// looks up the service, downloads the proxy code, and sends an access
// request to the generic server, which plans a deployment (charging
// planning CPU at its host), drives the deployment engine, and returns a
// binding to the entry component — at which point the generic proxy
// "replaces itself with a service-specific proxy" and later calls go
// straight to the deployed entry instance.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "planner/environment.hpp"
#include "planner/planner.hpp"
#include "runtime/deployment.hpp"
#include "runtime/lookup.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/retry.hpp"
#include "runtime/sharded_lookup.hpp"
#include "runtime/smock.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace psf::runtime {

class NetworkMonitor;

struct InitialPlacement {
  std::string component;  // component name in the spec
  net::NodeId node;
  planner::FactorBindings factors;
};

struct ServiceRegistration {
  spec::ServiceSpec spec;
  net::NodeId code_origin;  // where component code is served from
  std::vector<InitialPlacement> initial_placements;
  std::uint64_t proxy_code_bytes = 32 * 1024;
  std::map<std::string, std::string> attributes;
  // Abstract CPU units the generic server spends per planner candidate
  // examined; models planning as real work at the server host.
  double planning_cpu_per_candidate = 0.5;
  // Anytime planning: > 0 caps each cold access's planner wall-clock at this
  // many seconds (applied as PlanRequest::deadline_budget unless the request
  // sets its own). A deadline-truncated access returns the best incumbent
  // immediately and enqueues a background improvement job; see
  // GenericServer::drain_improvements. 0 = plan to completion (default).
  double anytime_deadline_s = 0.0;
};

// Background-improver counters (GenericServer::anytime_telemetry).
struct AnytimeTelemetry {
  std::uint64_t jobs_enqueued = 0;      // deadline-truncated cold accesses
  std::uint64_t improved_swaps = 0;     // better plan deployed + cache-swapped
  std::uint64_t discarded_stale = 0;    // epoch moved / entry gone: dropped
  std::uint64_t no_better = 0;          // full replan did not beat incumbent
  std::uint64_t nonmonotonic_refused = 0;  // swap would raise the score
  // Primary score after each swap, in swap order. Monotonically
  // non-increasing per fingerprint — the anytime contract the bench gates.
  std::vector<double> swap_primary_scores;
};

// Closed-loop repair counters (GenericServer::repair_telemetry). The wall
// samples are what the adaptation bench compares against cold planning to
// gate "repair latency ≪ cold replan".
struct RepairTelemetry {
  std::uint64_t repairs_attempted = 0;
  std::uint64_t repairs_succeeded = 0;   // repaired plan deployed
  std::uint64_t full_fallbacks = 0;      // restricted search was infeasible
  util::SampleSet repair_wall_ms;        // planner wall-clock per repair
};

// One-time costs of establishing service access (§4.2 reports these summing
// to ~10 s in the paper's configurations).
struct AccessCosts {
  sim::Duration lookup = sim::Duration::zero();    // query + proxy download
  sim::Duration planning = sim::Duration::zero();  // at the server host
  sim::Duration deployment = sim::Duration::zero();
  double planning_wall_seconds = 0.0;  // host wall-clock, for benches

  sim::Duration total() const { return lookup + planning + deployment; }
};

struct AccessOutcome {
  RuntimeInstanceId entry = 0;
  planner::DeploymentPlan plan;
  // Runtime instance behind each plan placement (index-aligned); reused
  // placements resolve to the pre-existing instance.
  std::vector<RuntimeInstanceId> instances;
  AccessCosts costs;
  // Planner search statistics; all-zero on a cache hit (no search ran).
  planner::SearchStats search;
  // Served from the plan cache: the client shares a previously deployed
  // access path and paid neither planning nor deployment.
  bool cache_hit = false;
  // Attached as a waiter to an identical in-flight access; the planner ran
  // once for the whole batch.
  bool coalesced = false;
};

class GenericServer {
 public:
  GenericServer(SmockRuntime& runtime, net::NodeId host,
                LookupService& lookup)
      : runtime_(runtime), host_(host), lookup_(lookup), engine_(runtime) {}

  net::NodeId host() const { return host_; }

  // Registers the service: validates the spec, advertises it in the lookup
  // service, deploys initial placements (locally at their nodes — no code
  // transfer), and invokes `ready`.
  void register_service(
      ServiceRegistration registration,
      std::shared_ptr<const planner::PropertyTranslator> translator,
      std::function<void(util::Status)> ready);

  // Plans + deploys an access path for a client. `request.client_node` and
  // the interface must be set by the caller (the proxy fills these in).
  void request_access(
      const std::string& service, planner::PlanRequest request,
      std::function<void(util::Expected<AccessOutcome>)> done);

  // Incremental repair of a running access path (ROADMAP item 2): like
  // request_access's cold path, but the search runs Planner::repair against
  // the broken plan + violations, pinning survivors and re-searching only
  // the affected neighborhood. No cache lookup — a repair exists precisely
  // because the cached path went bad — but the result IS published to the
  // cache under the current epoch, and identical accesses arriving while
  // the repair is in flight coalesce onto it, so rebinding clients ride the
  // repair instead of triggering cold replans. `repair_outcome` (optional)
  // is filled synchronously, before any simulated time elapses.
  void request_repair(
      const std::string& service, planner::PlanRequest request,
      const planner::DeploymentPlan& old_plan,
      const std::vector<planner::RepairViolation>& violations,
      std::function<void(util::Expected<AccessOutcome>)> done,
      planner::RepairOutcome* repair_outcome = nullptr);

  const RepairTelemetry& repair_telemetry() const { return repair_telemetry_; }

  // Re-translates environments after the network changed (monitor callback)
  // and replans still-registered access paths on demand. Bumps the service's
  // environment epoch, lazily invalidating every cached access path.
  util::Status refresh_environment(const std::string& service);

  // Subscribes to the monitor: every reported change bumps the environment
  // epoch of every registered service, so cached access paths planned
  // against the old topology are never replayed — even before any
  // refresh_environment runs. Wired by the Framework at construction.
  void attach_monitor(NetworkMonitor& monitor);

  // Bumps every service's environment epoch, lazily invalidating all cached
  // access paths. Called by the monitor subscription above and by lookup
  // shard membership changes (plans embed which registry answered; a
  // re-homed service must be re-planned, not replayed).
  void invalidate_cached_plans();

  // Current environment epoch (0 until the first bump); 0 for unknown
  // services.
  std::uint64_t environment_epoch(const std::string& service) const;

  // Cached access paths currently held for `service` (diagnostics/tests).
  std::size_t plan_cache_size(const std::string& service) const;

  // Cache/coalescing counters and latency distributions, shared across all
  // services this server hosts. Feed to Telemetry::attach_plan_cache.
  const PlanCacheTelemetry& access_telemetry() const {
    return cache_telemetry_;
  }

  // Reusable instances the planner may bind to (diagnostics/tests).
  const std::vector<planner::ExistingInstance>& existing_instances(
      const std::string& service) const;

  // Removes an instance from the reusable pool (it is being retired by a
  // redeployment); does not touch the runtime instance itself.
  util::Status forget_instance(const std::string& service,
                               RuntimeInstanceId id);

  // Shifts recorded load off a reused instance when a deployment that was
  // using it is retired.
  util::Status release_load(const std::string& service, RuntimeInstanceId id,
                            double rate_rps);

  const spec::ServiceSpec* service_spec(const std::string& service) const;
  const planner::EnvironmentView* environment(const std::string& service) const;

  // Processes the background-improvement queue: for each job (a cold access
  // whose anytime deadline truncated the search), re-plans WITHOUT a
  // deadline and, when the full search finds a strictly better plan, deploys
  // it and hot-swaps the cached access path so later identical clients bind
  // the improved plan. Safety is epoch-based, the same mechanism that keeps
  // cached plans honest: a job whose service epoch moved since enqueue — or
  // whose cache entry is gone — is discarded, never deployed over a changed
  // world; the epoch is re-checked after the (simulated-time) deployment
  // too, so a monitor event racing the deploy also voids the swap. A swap
  // that would *raise* the primary score is refused outright — incumbent
  // scores are monotonically non-increasing per fingerprint. Jobs run
  // sequentially; `done` fires when the queue is empty. Clients already
  // bound to the pre-swap plan keep their working (just slower) path.
  void drain_improvements(std::function<void()> done);

  // Improvement jobs queued and not yet drained (diagnostics/tests).
  std::size_t pending_improvements() const { return improvements_.size(); }

  const AnytimeTelemetry& anytime_telemetry() const {
    return anytime_telemetry_;
  }

 private:
  // Requests coalescing on an identical in-flight access: the first caller
  // runs the planner, later identical callers attach here and receive
  // copies of the outcome (flagged `coalesced`).
  struct InFlightAccess {
    std::uint64_t epoch_at_start = 0;
    std::vector<std::function<void(util::Expected<AccessOutcome>)>> waiters;
  };

  // A deadline-truncated access to re-plan in the background. Carries the
  // fully merged request (principal properties + code origin resolved) so
  // the replan explores exactly the plan space the truncated search did.
  struct ImprovementJob {
    std::string service;
    std::string fingerprint;
    planner::PlanRequest request;
    std::uint64_t epoch_at_enqueue = 0;
  };

  struct ServiceState {
    ServiceRegistration registration;
    std::shared_ptr<const planner::PropertyTranslator> translator;
    std::unique_ptr<planner::EnvironmentView> env;
    std::unique_ptr<planner::Planner> planner;
    std::vector<planner::ExistingInstance> existing;
    // Per-service environment epoch; cache entries tagged with an older
    // epoch are stale.
    std::uint64_t epoch = 0;
    PlanCache cache;
    std::map<std::string, std::shared_ptr<InFlightAccess>> inflight;
  };

  ServiceState* state_of(const std::string& service);
  const ServiceState* state_of(const std::string& service) const;

  // Adds a deployed placement to the reusable-instance pool (entry
  // components are client-private and excluded).
  void absorb_deployment(ServiceState& state,
                         const planner::DeploymentPlan& plan,
                         const DeployedPlan& deployed);

  // Merges the principal's translated properties into the request's
  // requirements (memoized per principal in the environment view).
  void merge_principal_requirements(ServiceState& state,
                                    planner::PlanRequest& request) const;

  // Warm path: replays a cached outcome when one exists for `fingerprint`
  // under the current epoch AND every instance it hands out is alive, still
  // pooled, and has capacity headroom for the added load. Returns true when
  // `done` was invoked (synchronously — a hit costs no simulated time at
  // the server). Failed validation evicts the entry and returns false.
  bool try_cached_access(
      ServiceState& state, const std::string& fingerprint,
      std::function<void(util::Expected<AccessOutcome>)>& done);

  // Accounts one client's worth of load on the shared (non-entry)
  // placements of `plan` — the hit/coalesced-path counterpart of what
  // absorb_deployment does for the cold path.
  void account_access_load(ServiceState& state,
                           const planner::DeploymentPlan& plan,
                           const std::vector<RuntimeInstanceId>& instances);

  // Cold-path completion: publishes the outcome into the cache (unless the
  // epoch moved while planning), releases the in-flight slot, and fans the
  // result out to the primary caller and every coalesced waiter.
  void finish_access(
      ServiceState& state, const std::string& fingerprint,
      const std::shared_ptr<InFlightAccess>& flight,
      std::function<void(util::Expected<AccessOutcome>)> primary,
      util::Expected<AccessOutcome> result);

  // Runs one queued job, then recurses onto the rest of the queue.
  void run_improvement(std::function<void()> done);

  SmockRuntime& runtime_;
  net::NodeId host_;
  LookupService& lookup_;
  DeploymentEngine engine_;
  std::map<std::string, std::unique_ptr<ServiceState>> services_;
  PlanCacheTelemetry cache_telemetry_;
  std::deque<ImprovementJob> improvements_;
  AnytimeTelemetry anytime_telemetry_;
  RepairTelemetry repair_telemetry_;
};

class GenericProxy {
 public:
  // `defaults` carries the client's interface + property requirements +
  // request rate; client_node is filled from `client_node`.
  GenericProxy(SmockRuntime& runtime, LookupService& lookup,
               net::NodeId client_node, std::string service,
               planner::PlanRequest defaults)
      : runtime_(runtime),
        lookup_(lookup),
        client_node_(client_node),
        service_(std::move(service)),
        defaults_(std::move(defaults)) {}

  bool bound() const { return bound_; }
  const AccessOutcome& outcome() const {
    PSF_CHECK_MSG(bound_, "proxy not bound yet");
    return outcome_;
  }

  // Performs lookup + proxy download + access request + deployment; idempotent
  // once bound.
  void bind(std::function<void(util::Status)> done);

  // Invokes the service. Auto-binds on first use (the paper's transparent
  // generic→specific proxy replacement). With retries enabled (below),
  // transport failures are retried under the policy's backoff/budget and
  // the callback fires exactly once with the final outcome.
  void invoke(Request request, ResponseCallback done);

  // Turns on the client-resilience policy for subsequent invokes. The
  // jitter RNG is seeded from policy.seed mixed with the client node, so a
  // fleet of proxies sharing one policy still draws independent streams —
  // deterministically. `telemetry` (optional, caller-owned) accumulates
  // attempt/timeout/drop counters and the backoff histogram.
  void enable_retries(RetryPolicy policy, RetryTelemetry* telemetry = nullptr);
  bool retries_enabled() const { return retry_; }

  // Routes this proxy's lookups through the sharded registry: the query
  // goes to the client's nearest (home) shard and each peer-to-peer
  // forwarding hop to the owning shard is charged on the simulated fabric.
  // The proxy also keeps the service's server-independent LookupHandle,
  // which stays valid across shard membership changes.
  void use_sharded_lookup(ShardedLookupService& sharded);
  LookupHandle lookup_handle() const { return handle_; }

 private:
  // One logical invoke() under the retry policy: tracks the attempt budget
  // and overall deadline across wire attempts.
  struct PendingInvoke {
    Request request;
    ResponseCallback done;
    std::size_t attempts = 0;  // wire attempts made so far
    sim::Time deadline;        // Time::max() when the policy sets none
  };

  void finish_bind(util::Status status);
  // Charges one 512-byte query/forwarding message per consecutive hop pair,
  // then invokes `then` (runs it immediately when hops has < 2 entries).
  void walk_query_chain(std::shared_ptr<std::vector<net::NodeId>> hops,
                        std::size_t index, std::function<void()> then);
  void start_attempt(const std::shared_ptr<PendingInvoke>& call);
  void send_attempt(const std::shared_ptr<PendingInvoke>& call);
  void complete_attempt(const std::shared_ptr<PendingInvoke>& call,
                        Response response);

  SmockRuntime& runtime_;
  LookupService& lookup_;
  ShardedLookupService* sharded_ = nullptr;  // non-null: sharded resolution
  LookupHandle handle_;
  net::NodeId client_node_;
  std::string service_;
  planner::PlanRequest defaults_;
  bool bound_ = false;
  bool binding_ = false;
  AccessOutcome outcome_;
  std::vector<std::function<void(util::Status)>> waiters_;
  bool retry_ = false;
  RetryPolicy policy_;
  RetryTelemetry* telemetry_ = nullptr;
  util::Rng retry_rng_;
};

}  // namespace psf::runtime
