#include "runtime/deployment.hpp"

#include <memory>

#include "util/logging.hpp"

namespace psf::runtime {

namespace {

struct DeployState {
  SmockRuntime* runtime;
  const planner::DeploymentPlan plan;  // copy: caller's plan may not outlive us
  net::NodeId code_origin;
  std::function<void(util::Expected<DeployedPlan>)> done;
  sim::Time started_at;

  std::vector<RuntimeInstanceId> instances;
  std::size_t pending_installs = 0;
  bool failed = false;
  util::Status failure;

  void finish_if_ready() {
    if (pending_installs != 0) return;
    if (failed) {
      done(failure);
      return;
    }

    // Wire every planned linkage.
    for (const planner::Wire& wire : plan.wires) {
      auto st = runtime->wire(instances[wire.client], wire.interface_name,
                              instances[wire.server]);
      if (!st) {
        done(st);
        return;
      }
    }

    // Copy plan-derived metadata onto new instances, then start them
    // servers-first (higher placement ids are deeper in the tree only by
    // construction order, so walk wires to find a safe order: a simple
    // reverse-placement-order start is sufficient because the planner
    // creates parents before children).
    for (std::size_t i = 0; i < plan.placements.size(); ++i) {
      const planner::Placement& p = plan.placements[i];
      Instance& inst = runtime->instance(instances[i]);
      inst.reserved_load_rps += p.inbound_rate_rps;
      if (p.reuse_existing) continue;
      inst.effective = p.effective;
      inst.downstream_latency_s = p.expected_latency_s;
    }
    for (std::size_t i = plan.placements.size(); i-- > 0;) {
      const planner::Placement& p = plan.placements[i];
      if (p.reuse_existing) continue;
      auto st = runtime->start(instances[i]);
      if (!st) {
        done(st);
        return;
      }
    }

    DeployedPlan result;
    result.instances = instances;
    result.entry = instances[plan.entry];
    result.elapsed = runtime->simulator().now() - started_at;
    done(result);
  }
};

}  // namespace

void DeploymentEngine::deploy(
    const planner::DeploymentPlan& plan, net::NodeId code_origin,
    std::function<void(util::Expected<DeployedPlan>)> done) {
  auto state = std::make_shared<DeployState>(
      DeployState{&runtime_, plan, code_origin, std::move(done),
                  runtime_.simulator().now(),
                  std::vector<RuntimeInstanceId>(plan.placements.size(), 0),
                  0, false, util::Status::ok()});

  // Count installs first so completions cannot race past a partial count,
  // and validate every reuse up front: a vanished reuse is the root-cause
  // failure and must not be masked by an install that dies in transit.
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const planner::Placement& p = plan.placements[i];
    if (!p.reuse_existing) {
      ++state->pending_installs;
    } else if (!runtime_.exists(p.existing_runtime_id)) {
      if (!state->failed) {
        state->failed = true;
        state->failure = util::not_found(
            "plan reuses instance " + std::to_string(p.existing_runtime_id) +
            " which no longer exists");
      }
    } else {
      state->instances[i] = p.existing_runtime_id;
    }
  }

  bool any_new = state->pending_installs != 0;
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    const planner::Placement& p = plan.placements[i];
    if (p.reuse_existing) continue;
    runtime_.install(
        *p.component, p.node, p.factors, code_origin,
        [state, i](util::Expected<RuntimeInstanceId> id) {
          --state->pending_installs;
          if (!id) {
            // First failure wins: later transport drops must not mask the
            // root cause (e.g. a vanished-reuse rejection).
            if (!state->failed) {
              state->failed = true;
              state->failure = id.status();
            }
          } else {
            state->instances[i] = *id;
          }
          state->finish_if_ready();
        });
  }
  if (!any_new) state->finish_if_ready();
}

}  // namespace psf::runtime
