#include "runtime/telemetry.hpp"

#include <algorithm>
#include <sstream>

namespace psf::runtime {

void Telemetry::baseline() {
  const net::Network& network = runtime_.network();
  node_last_busy_.assign(network.node_count(), 0.0);
  link_last_busy_.assign(network.link_count(), 0.0);
  node_util_.assign(network.node_count(), {});
  link_util_.assign(network.link_count(), {});
  for (std::uint32_t n = 0; n < network.node_count(); ++n) {
    node_last_busy_[n] = runtime_.node_busy_seconds(net::NodeId{n});
  }
  for (std::uint32_t l = 0; l < network.link_count(); ++l) {
    link_last_busy_[l] = runtime_.link_busy_seconds(net::LinkId{l});
  }
  windows_ = 0;
}

void Telemetry::sample() {
  const double window_s = period_.seconds();
  for (std::uint32_t n = 0; n < node_last_busy_.size(); ++n) {
    const double busy = runtime_.node_busy_seconds(net::NodeId{n});
    node_util_[n].add((busy - node_last_busy_[n]) / window_s);
    node_last_busy_[n] = busy;
  }
  for (std::uint32_t l = 0; l < link_last_busy_.size(); ++l) {
    const double busy = runtime_.link_busy_seconds(net::LinkId{l});
    link_util_[l].add((busy - link_last_busy_[l]) / window_s);
    link_last_busy_[l] = busy;
  }
  ++windows_;
}

std::vector<ResourceUsage> Telemetry::node_usage() const {
  std::vector<ResourceUsage> out;
  const net::Network& network = runtime_.network();
  for (std::uint32_t n = 0; n < node_util_.size(); ++n) {
    ResourceUsage usage;
    usage.name = network.node(net::NodeId{n}).name;
    usage.mean_utilization = node_util_[n].mean();
    usage.peak_utilization = node_util_[n].max();
    usage.busy_seconds = runtime_.node_busy_seconds(net::NodeId{n});
    out.push_back(std::move(usage));
  }
  return out;
}

std::vector<ResourceUsage> Telemetry::link_usage() const {
  std::vector<ResourceUsage> out;
  const net::Network& network = runtime_.network();
  for (std::uint32_t l = 0; l < link_util_.size(); ++l) {
    const net::Link& link = network.link(net::LinkId{l});
    ResourceUsage usage;
    usage.name = network.node(link.a).name + "<->" +
                 network.node(link.b).name;
    usage.mean_utilization = link_util_[l].mean();
    usage.peak_utilization = link_util_[l].max();
    usage.busy_seconds = runtime_.link_busy_seconds(net::LinkId{l});
    out.push_back(std::move(usage));
  }
  return out;
}

std::string Telemetry::report(std::size_t top_n) const {
  auto format = [top_n](const char* label,
                        std::vector<ResourceUsage> usage) {
    std::sort(usage.begin(), usage.end(),
              [](const ResourceUsage& a, const ResourceUsage& b) {
                return a.busy_seconds > b.busy_seconds;
              });
    std::ostringstream oss;
    oss << label << " (top " << std::min(top_n, usage.size()) << ")\n";
    for (std::size_t i = 0; i < usage.size() && i < top_n; ++i) {
      const ResourceUsage& u = usage[i];
      if (u.busy_seconds <= 0.0) break;
      oss << "  " << u.name << ": mean " << u.mean_utilization * 100.0
          << "% peak " << u.peak_utilization * 100.0 << "% busy "
          << u.busy_seconds << "s\n";
    }
    return oss.str();
  };
  std::string out = format("node cpu utilization", node_usage()) +
                    format("link utilization", link_usage());
  if (plan_cache_ != nullptr) out += plan_cache_->report();
  if (coherence_ != nullptr) out += coherence_->report();
  if (retry_ != nullptr) out += retry_->report();
  return out;
}

}  // namespace psf::runtime
