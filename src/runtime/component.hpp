// Runtime component base class and the component factory registry.
//
// The registry is this reproduction's substitute for Java dynamic class
// loading (the paper's Smock runs on JDK 1.3 and "benefits from [Java's]
// support for dynamic class loading, verification, and installation").
// C++ has no runtime reflection, so "mobile code" is modeled as: every
// component type registers a named factory at program start; deploying a
// component to a node charges its declared code size over the network, then
// instantiates through the factory. Placement, wiring, lifecycle and cost
// semantics are preserved; only the byte-level code shipping is elided.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/network.hpp"
#include "planner/plan.hpp"
#include "runtime/message.hpp"
#include "spec/model.hpp"
#include "util/status.hpp"

namespace psf::sim {
class Simulator;
}

namespace psf::runtime {

class SmockRuntime;

using RuntimeInstanceId = std::uint64_t;

// A component's exported state, moved across nodes during live migration.
// `body` is the same type-erased payload Request carries, so state rides the
// existing message machinery; `bytes` is what the transfer costs on the
// wire (0 = free, e.g. a stateless component that still wants the hooks).
struct StateSnapshot {
  std::uint64_t bytes = 0;
  std::shared_ptr<const MessageBody> body;
};

class Component {
 public:
  virtual ~Component() = default;

  // Lifecycle hooks, invoked by the node wrapper after installation/on
  // teardown.
  virtual void on_start() {}
  virtual void on_stop() {}

  // Live-migration hooks (ROADMAP item 2). The runtime's migrate() calls
  // them in order on the OLD instance: prepare_migration (quiesce — flush
  // coherence queues, finish write-backs; MUST eventually invoke done),
  // then export_state. import_state runs on the NEW instance after its
  // on_start, so directory registrations made there already exist when the
  // state lands; implementations should MERGE (imported state + anything
  // absorbed since start), not overwrite. Defaults model a stateless
  // component: nothing to quiesce, nothing to move.
  virtual void prepare_migration(std::function<void()> done) { done(); }
  virtual std::optional<StateSnapshot> export_state() { return std::nullopt; }
  virtual util::Status import_state(const StateSnapshot&) {
    return util::Status::ok();
  }

  // Handles one request. `done` may be invoked synchronously or after
  // further simulated work (downstream calls, CPU charges).
  virtual void handle_request(const Request& request,
                              ResponseCallback done) = 0;

 protected:
  // Issues a request along the wire bound to `iface` (set up by the
  // deployment engine per the plan). Fails the callback when unwired.
  void call(const std::string& iface, Request request, ResponseCallback done);

  // Charges `units` of CPU on this component's node, then continues.
  void charge_cpu(double units, std::function<void()> then);

  sim::Simulator& simulator();
  const spec::ComponentDef& definition() const;
  const planner::FactorBindings& factors() const;
  net::NodeId node() const;
  RuntimeInstanceId self() const { return self_; }
  SmockRuntime& runtime();

 private:
  friend class SmockRuntime;
  SmockRuntime* runtime_ = nullptr;
  RuntimeInstanceId self_ = 0;
};

class ComponentFactoryRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Component>()>;

  util::Status register_type(const std::string& component_name,
                             Factory factory) {
    if (factories_.count(component_name) != 0) {
      return util::already_exists("component type '" + component_name +
                                  "' already registered");
    }
    factories_[component_name] = std::move(factory);
    return util::Status::ok();
  }

  bool has(const std::string& component_name) const {
    return factories_.count(component_name) != 0;
  }

  util::Expected<std::unique_ptr<Component>> create(
      const std::string& component_name) const {
    auto it = factories_.find(component_name);
    if (it == factories_.end()) {
      return util::not_found("no factory registered for component type '" +
                             component_name + "'");
    }
    return it->second();
  }

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace psf::runtime
