// Lease-based failure detection (the Jini piece §3.2's Smock leaves out).
//
// Each watched node's wrapper holds a lease with the lookup service and
// renews it by sending a small heartbeat message to the registry host every
// `heartbeat` of simulated time. Heartbeats ride the real message fabric
// (send_bytes), so a crashed node stops renewing because nothing runs there,
// and a partitioned node stops renewing because its heartbeats cannot reach
// the registry — the detector cannot tell the two apart, which is exactly
// the Jini model: a node whose lease expires is treated as failed.
//
// A sweep timer on the registry side expires leases not renewed within
// `heartbeat + grace` and fires NetworkMonitor::report_node_failure, which
// drives the existing adaptation chain (GenericServer epoch bump + pool
// eviction, PlanCache invalidation, RedeploymentManager::check_now). If a
// renewal later arrives (a healed partition), the lease reactivates.
//
// Determinism: timers are plain simulator events; no RNG is involved. With
// detection disabled nothing is scheduled and runs are bit-identical to
// pre-lease behavior.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "runtime/monitor.hpp"
#include "runtime/retry.hpp"
#include "runtime/smock.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace psf::runtime {

struct LeaseParams {
  // How often each node wrapper renews its lease.
  sim::Duration heartbeat = sim::Duration::from_millis(500);
  // Extra slack beyond one heartbeat before the lease expires: the lease
  // duration is heartbeat + grace, so a few delayed/dropped renewals are
  // tolerated before the node is declared dead.
  sim::Duration grace = sim::Duration::from_millis(1500);
  // Registry-side expiry sweep period.
  sim::Duration sweep = sim::Duration::from_millis(250);
  // Wire size of one renewal message.
  std::uint64_t heartbeat_bytes = 64;
};

class LeaseManager {
 public:
  struct Expiry {
    net::NodeId node;
    sim::Time at;
  };

  LeaseManager(SmockRuntime& runtime, NetworkMonitor& monitor,
               net::NodeId registry, LeaseParams params = {});

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  // Grants a lease for `node` (renewed from now). watch_all covers every
  // node currently in the network.
  void watch(net::NodeId node);
  void watch_all();

  // Starts/stops the heartbeat + sweep timers. While running, the simulator
  // queue never drains — use run_until / run_until_condition, not run().
  void start();
  void stop();
  bool running() const { return running_; }

  const LeaseParams& params() const { return params_; }
  sim::Duration lease_duration() const {
    return params_.heartbeat + params_.grace;
  }

  bool watched(net::NodeId node) const;
  bool lease_active(net::NodeId node) const;

  // Instrumentation hook for fault injectors: records when `node` actually
  // crashed so the expiry that detects it can log detection latency.
  void note_crash(net::NodeId node, sim::Time at);

  // Every expiry fired so far, in detection order. A node that expires,
  // recovers, and expires again appears twice.
  const std::vector<Expiry>& expirations() const { return expirations_; }
  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  std::uint64_t heartbeats_delivered() const { return heartbeats_delivered_; }
  std::uint64_t heartbeats_lost() const { return heartbeats_lost_; }
  std::uint64_t recoveries() const { return recoveries_; }
  // Crash-to-expiry latency samples (only for expiries with a note_crash).
  const util::SampleSet& detection_latency_ms() const {
    return detection_ms_;
  }

  // Mirrors detection-latency samples into client telemetry (the histogram
  // RetryTelemetry::report prints). Optional; may be null.
  void set_telemetry(RetryTelemetry* telemetry) { telemetry_ = telemetry; }

 private:
  struct Lease {
    sim::Time last_renewal;
    bool active = true;
    // Set by note_crash; consumed by the expiry that detects it.
    bool crash_noted = false;
    sim::Time crashed_at;
  };

  void heartbeat_tick();
  void sweep_tick();

  SmockRuntime& runtime_;
  NetworkMonitor& monitor_;
  net::NodeId registry_;
  LeaseParams params_;
  std::map<std::uint32_t, Lease> leases_;  // keyed by node id
  std::unique_ptr<sim::PeriodicTimer> heartbeat_timer_;
  std::unique_ptr<sim::PeriodicTimer> sweep_timer_;
  bool running_ = false;
  std::vector<Expiry> expirations_;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeats_delivered_ = 0;
  std::uint64_t heartbeats_lost_ = 0;
  std::uint64_t recoveries_ = 0;
  util::SampleSet detection_ms_;
  RetryTelemetry* telemetry_ = nullptr;
};

}  // namespace psf::runtime
