// Deployment engine: realizes a DeploymentPlan through the node wrappers —
// install new components (charging code downloads from the service's code
// origin), wire every linkage, start instances servers-first.
#pragma once

#include <functional>
#include <vector>

#include "planner/plan.hpp"
#include "runtime/smock.hpp"
#include "util/status.hpp"

namespace psf::runtime {

struct DeployedPlan {
  // Runtime instance per plan placement (index-aligned with
  // plan.placements); reused placements map to their existing instance.
  std::vector<RuntimeInstanceId> instances;
  RuntimeInstanceId entry = 0;
  sim::Duration elapsed = sim::Duration::zero();
};

class DeploymentEngine {
 public:
  explicit DeploymentEngine(SmockRuntime& runtime) : runtime_(runtime) {}

  // Asynchronously installs/wires/starts the plan. Code for new components
  // downloads from `code_origin` concurrently (the wrappers act in
  // parallel); wiring happens after every install lands.
  void deploy(const planner::DeploymentPlan& plan, net::NodeId code_origin,
              std::function<void(util::Expected<DeployedPlan>)> done);

 private:
  SmockRuntime& runtime_;
};

}  // namespace psf::runtime
