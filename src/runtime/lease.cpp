#include "runtime/lease.hpp"

#include "util/logging.hpp"

namespace psf::runtime {

LeaseManager::LeaseManager(SmockRuntime& runtime, NetworkMonitor& monitor,
                           net::NodeId registry, LeaseParams params)
    : runtime_(runtime),
      monitor_(monitor),
      registry_(registry),
      params_(params) {
  PSF_CHECK(params_.heartbeat.nanos() > 0);
  PSF_CHECK(params_.grace.nanos() >= 0);
  PSF_CHECK(params_.sweep.nanos() > 0);
  heartbeat_timer_ = std::make_unique<sim::PeriodicTimer>(
      runtime_.simulator(), params_.heartbeat, [this] { heartbeat_tick(); });
  sweep_timer_ = std::make_unique<sim::PeriodicTimer>(
      runtime_.simulator(), params_.sweep, [this] { sweep_tick(); });
}

void LeaseManager::watch(net::NodeId node) {
  Lease lease;
  lease.last_renewal = runtime_.simulator().now();
  leases_.insert_or_assign(node.value, lease);
}

void LeaseManager::watch_all() {
  for (net::NodeId node : runtime_.network().all_nodes()) watch(node);
}

void LeaseManager::start() {
  if (running_) return;
  running_ = true;
  // Fresh grant on (re)start so a long pre-start simulation does not count
  // against the first renewal window.
  const sim::Time now = runtime_.simulator().now();
  for (auto& [id, lease] : leases_) lease.last_renewal = now;
  heartbeat_timer_->start();
  sweep_timer_->start();
}

void LeaseManager::stop() {
  if (!running_) return;
  running_ = false;
  heartbeat_timer_->stop();
  sweep_timer_->stop();
}

bool LeaseManager::watched(net::NodeId node) const {
  return leases_.count(node.value) != 0;
}

bool LeaseManager::lease_active(net::NodeId node) const {
  auto it = leases_.find(node.value);
  return it != leases_.end() && it->second.active;
}

void LeaseManager::note_crash(net::NodeId node, sim::Time at) {
  auto it = leases_.find(node.value);
  if (it == leases_.end()) return;
  it->second.crash_noted = true;
  it->second.crashed_at = at;
}

void LeaseManager::heartbeat_tick() {
  for (auto& [id, lease] : leases_) {
    const net::NodeId node{id};
    if (!runtime_.network().node_up(node)) {
      // Nothing runs on a crashed node; its wrapper cannot renew.
      ++heartbeats_lost_;
      continue;
    }
    ++heartbeats_sent_;
    runtime_.send_bytes(
        node, registry_, params_.heartbeat_bytes,
        [this, id = id] {
          if (!runtime_.network().node_up(net::NodeId{id})) {
            // Stale heartbeat: sent while the node was up, delivered after it
            // crashed. Renewing here would reactivate the lease and make the
            // observer chain see a phantom recovery plus a SECOND expiry for
            // the same crash.
            ++heartbeats_lost_;
            return;
          }
          ++heartbeats_delivered_;
          auto it = leases_.find(id);
          if (it == leases_.end()) return;
          Lease& renewed = it->second;
          renewed.last_renewal = runtime_.simulator().now();
          if (!renewed.active) {
            // A renewal from a node declared dead: the partition healed.
            renewed.active = true;
            ++recoveries_;
            PSF_INFO() << "lease for node "
                       << runtime_.network().node(net::NodeId{id}).name
                       << " reactivated by late renewal";
          }
        },
        [this](TransportError) { ++heartbeats_lost_; });
  }
}

void LeaseManager::sweep_tick() {
  const sim::Time now = runtime_.simulator().now();
  for (auto& [id, lease] : leases_) {
    if (!lease.active) continue;
    if (now - lease.last_renewal <= lease_duration()) continue;
    lease.active = false;
    const net::NodeId node{id};
    expirations_.push_back({node, now});
    if (lease.crash_noted) {
      const double latency_ms = (now - lease.crashed_at).millis();
      detection_ms_.add(latency_ms);
      if (telemetry_ != nullptr) telemetry_->detection_ms.add(latency_ms);
      lease.crash_noted = false;
    }
    PSF_INFO() << "lease for node " << runtime_.network().node(node).name
               << " expired at " << now.millis() << "ms; reporting failure";
    monitor_.report_node_failure(node);
  }
}

}  // namespace psf::runtime
