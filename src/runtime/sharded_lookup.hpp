// Sharded attribute-based lookup (megascale scale-out of §3.2).
//
// A single LookupService registry anchored at one node becomes the
// bottleneck (and single point of failure) once clients number in the
// hundreds of thousands. ShardedLookupService spreads the registry over N
// shard hosts:
//
//   - service -> owner shard via rendezvous (highest-random-weight)
//     hashing, so adding a shard re-homes only ~1/(N+1) of the services;
//   - clients talk to their HOME shard — the one nearest by routed
//     latency — which forwards peer-to-peer to the owner when it does not
//     hold the service itself (the probe path is reported so the proxy can
//     charge each forwarding leg on the simulated fabric);
//   - clients hold opaque LookupHandles derived from the service name
//     alone. A handle is server-independent: it stays valid across shard
//     membership changes and re-homing.
//
// Membership changes notify registered listeners; the Framework wires this
// to GenericServer::invalidate_cached_plans(), so access paths planned
// against the old shard layout are never replayed (same epoch mechanism
// that guards against network changes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "runtime/lookup.hpp"
#include "util/status.hpp"

namespace psf::runtime {

// Opaque, server-independent handle for a registered service. Derived from
// the service name only — survives add_shard() and re-homing.
struct LookupHandle {
  std::uint64_t value = 0;

  bool valid() const { return value != 0; }
  bool operator==(const LookupHandle&) const = default;
};

// Result of a sharded resolution, including the shard-to-shard probe path
// so callers can charge the forwarding traffic.
struct LookupResolution {
  const ServiceAdvertisement* ad = nullptr;  // nullptr: not registered
  std::size_t home_shard = 0;    // shard the client contacted
  std::size_t holder_shard = 0;  // shard that answered (valid if ad != nullptr)
  // Shards visited in order, starting with home_shard. Each consecutive
  // pair is one peer-to-peer forwarding hop.
  std::vector<std::size_t> probe_path;

  bool found() const { return ad != nullptr; }
  std::size_t forwards() const {
    return probe_path.empty() ? 0 : probe_path.size() - 1;
  }
};

class ShardedLookupService {
 public:
  struct Stats {
    std::uint64_t resolves = 0;
    std::uint64_t home_hits = 0;  // answered by the client's home shard
    std::uint64_t forwards = 0;   // peer-to-peer forwarding hops
    std::uint64_t rehomed_services = 0;
    std::uint64_t membership_changes = 0;
  };

  // At least one shard host is required. The network reference is used for
  // nearest-shard (home) selection via cached routes.
  ShardedLookupService(const net::Network& network,
                       std::vector<net::NodeId> shard_hosts);

  std::size_t shard_count() const { return shards_.size(); }
  LookupService& shard(std::size_t i);
  const LookupService& shard(std::size_t i) const;

  // Stable name-derived handle (never 0 for a non-empty name).
  static LookupHandle handle_for(const std::string& service_name);

  // Rendezvous owner under the current membership.
  std::size_t owner_shard(const std::string& service_name) const;
  // Nearest shard by routed latency (falls back to shard 0 when the client
  // cannot reach any shard host).
  std::size_t home_shard(net::NodeId client) const;

  // Registers on the owner shard and records the name<->handle binding.
  util::Status register_service(ServiceAdvertisement ad);
  util::Status unregister_service(const std::string& service_name);

  // Probe home -> owner -> remaining shards (the latter covers services
  // registered directly on a specific shard, e.g. through the legacy
  // single-registry API surface).
  LookupResolution resolve(const std::string& service_name,
                           net::NodeId client);
  LookupResolution resolve(LookupHandle handle, net::NodeId client);

  // Adds a shard anchored at `host`, re-homes every service whose
  // rendezvous owner moved, fires membership listeners, and returns the new
  // shard's index.
  std::size_t add_shard(net::NodeId host);

  // Called after every membership change (add_shard), once re-homing is
  // complete. The Framework registers plan-cache invalidation here.
  void on_membership_change(std::function<void()> listener);

  const Stats& stats() const { return stats_; }

 private:
  const LookupService* probe(std::size_t shard,
                             const std::string& service_name) const;

  const net::Network& network_;
  std::vector<std::unique_ptr<LookupService>> shards_;
  std::map<std::uint64_t, std::string> handle_names_;
  std::vector<std::function<void()>> listeners_;
  Stats stats_;
};

}  // namespace psf::runtime
