// detlint:ordered-output — fingerprint canonicalization must be order-stable.
#include "runtime/plan_cache.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace psf::runtime {

std::uint64_t plan_rate_bucket(double rps) {
  if (rps <= 0.0) return 0;
  std::uint64_t bucket = 1;
  while (static_cast<double>(bucket) < rps && bucket < (1ull << 62)) {
    bucket <<= 1;
  }
  return bucket;
}

std::string plan_fingerprint(const planner::PlanRequest& request) {
  // Unit separator: property values may contain printable punctuation.
  constexpr char kSep = '\x1f';
  std::vector<std::pair<std::string, std::string>> props;
  props.reserve(request.required_properties.size());
  for (const auto& [name, value] : request.required_properties) {
    props.emplace_back(name, value.to_string());
  }
  std::sort(props.begin(), props.end());

  std::ostringstream oss;
  oss << request.interface_name << kSep << "client:"
      << (request.client_node.valid()
              ? std::to_string(request.client_node.value)
              : "-")
      << kSep << "origin:"
      << (request.code_origin.valid()
              ? std::to_string(request.code_origin.value)
              : "-")
      << kSep << "rate:" << plan_rate_bucket(request.request_rate_rps) << kSep
      << "obj:" << planner::objective_name(request.objective) << kSep
      << "pin:" << (request.pin_entry_to_client ? 1 : 0) << kSep
      << "depth:" << request.max_depth << kSep
      << "cold:" << request.cold_view_penalty;
  for (const auto& [name, value] : props) {
    oss << kSep << name << '=' << value;
  }
  return oss.str();
}

namespace {

// Compact log-scale latency histogram: one decade per bucket from 0.01 ms.
std::string histogram_line(const util::SampleSet& set) {
  static const double kEdges[] = {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
  constexpr std::size_t kBuckets = sizeof(kEdges) / sizeof(kEdges[0]) + 1;
  std::size_t counts[kBuckets] = {};
  for (double ms : set.samples()) {
    std::size_t b = 0;
    while (b < kBuckets - 1 && ms > kEdges[b]) ++b;
    counts[b]++;
  }
  std::ostringstream oss;
  oss << "[";
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (b == 0) {
      oss << " <=" << kEdges[0] << "ms:" << counts[b];
    } else if (b == kBuckets - 1) {
      oss << " >" << kEdges[kBuckets - 2] << "ms:" << counts[b];
    } else {
      oss << " <=" << kEdges[b] << "ms:" << counts[b];
    }
  }
  oss << " ]";
  return oss.str();
}

void sample_line(std::ostringstream& oss, const char* label,
                 const util::SampleSet& set) {
  util::SampleSet copy = set;  // percentile() sorts in place
  oss << "  " << label << ": n=" << copy.count();
  if (copy.count() > 0) {
    oss << " mean " << copy.mean() << "ms p50 " << copy.percentile(50.0)
        << "ms p99 " << copy.percentile(99.0) << "ms max " << copy.max()
        << "ms " << histogram_line(copy);
  }
  oss << "\n";
}

}  // namespace

std::string PlanCacheTelemetry::report() const {
  std::ostringstream oss;
  oss << "plan cache\n"
      << "  hits " << hits << " misses " << misses << " coalesced "
      << coalesced << " invalidations " << invalidations << " inserts "
      << inserts << "\n"
      << "  evictions: stale-epoch " << stale_epoch_evictions << " liveness "
      << liveness_evictions << " capacity " << capacity_evictions
      << "; epoch bumps " << epoch_bumps << "\n";
  sample_line(oss, "cold access (plan+deploy)", cold_access_ms);
  sample_line(oss, "warm access (plan+deploy)", warm_access_ms);
  return oss.str();
}

PlanCache::Entry* PlanCache::find(const std::string& fingerprint,
                                  std::uint64_t epoch,
                                  PlanCacheTelemetry& telemetry) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return nullptr;
  if (it->second.epoch != epoch) {
    ++telemetry.stale_epoch_evictions;
    ++telemetry.invalidations;
    entries_.erase(it);
    return nullptr;
  }
  it->second.last_used = ++tick_;
  return &it->second;
}

void PlanCache::insert(const std::string& fingerprint, std::uint64_t epoch,
                       CachedAccess access, PlanCacheTelemetry& telemetry) {
  if (entries_.size() >= max_entries_ &&
      entries_.count(fingerprint) == 0) {
    // Evict the least-recently-used entry to stay within the budget.
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    ++telemetry.invalidations;
    entries_.erase(lru);
  }
  Entry& entry = entries_[fingerprint];
  entry.access = std::move(access);
  entry.epoch = epoch;
  entry.hits = 0;
  entry.last_used = ++tick_;
  ++telemetry.inserts;
}

void PlanCache::erase(const std::string& fingerprint,
                      PlanCacheTelemetry& telemetry) {
  if (entries_.erase(fingerprint) != 0) ++telemetry.invalidations;
}

std::size_t PlanCache::evict_referencing(RuntimeInstanceId id,
                                         PlanCacheTelemetry& telemetry) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const CachedAccess& access = it->second.access;
    const bool references =
        access.entry == id ||
        std::find(access.instances.begin(), access.instances.end(), id) !=
            access.instances.end();
    if (references) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  telemetry.invalidations += dropped;
  return dropped;
}

}  // namespace psf::runtime
