// The Smock runtime core (§3.2): component instances on simulated nodes,
// request routing with full network cost accounting, node wrappers for
// remote installation, and per-node/per-link contention.
//
// Cost model:
//  - a message from node A to node B follows the latency-shortest route;
//    each link is store-and-forward: the message waits for the link to be
//    free, occupies it for bytes*8/bandwidth, then incurs the propagation
//    latency (half-duplex per link — a deliberate simplification that
//    slightly overestimates contention, noted in DESIGN.md);
//  - handling a request charges the component's cpu_per_request on the
//    hosting node's serial CPU (FIFO); components may charge extra CPU for
//    work like encryption.
//
// Determinism: everything is driven by the discrete-event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "planner/plan.hpp"
#include "runtime/component.hpp"
#include "runtime/message.hpp"
#include "sim/simulator.hpp"
#include "spec/model.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace psf::runtime {

struct InstanceStats {
  std::uint64_t requests_handled = 0;
  std::uint64_t requests_forwarded = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
};

struct Instance {
  RuntimeInstanceId id = 0;
  const spec::ComponentDef* def = nullptr;
  net::NodeId node;
  planner::FactorBindings factors;
  planner::EffectiveProps effective;     // from the plan that created it
  double downstream_latency_s = 0.0;     // expected latency behind this
  double reserved_load_rps = 0.0;        // planner reservations
  bool started = false;
  // Crashed instances are tombstoned, not freed: simulator events may still
  // hold continuations into the component object. A tombstone is invisible
  // to exists()/instances_on() and rejects new work, but keeps the object
  // alive for stragglers (the cost: crashed objects persist for the run).
  bool crashed = false;
  std::unique_ptr<Component> component;
  std::map<std::string, RuntimeInstanceId> wires;  // iface -> server
  InstanceStats stats;
};

struct RuntimeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t installs = 0;
  std::uint64_t requests_delivered = 0;
  // Remote installs that skipped the code transfer because the node already
  // staged this component's code from an earlier install.
  std::uint64_t code_cache_hits = 0;
  // Fault accounting: messages that found no live route at send time, and
  // messages lost mid-route (hop over a down link, or a loss draw).
  std::uint64_t messages_unroutable = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t invoke_timeouts = 0;
  // Live migrations completed (migrate()) and the state bytes they moved
  // between nodes (state_transfer_bytes also counts transfer_state calls
  // issued outside a full migrate).
  std::uint64_t migrations = 0;
  std::uint64_t state_transfer_bytes = 0;
};

class SmockRuntime {
 public:
  // The contention trackers grow on demand, so nodes/links may be added to
  // the network after the runtime is constructed.
  SmockRuntime(sim::Simulator& simulator, net::Network& network)
      : sim_(simulator), network_(network) {}

  SmockRuntime(const SmockRuntime&) = delete;
  SmockRuntime& operator=(const SmockRuntime&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return network_; }
  ComponentFactoryRegistry& factories() { return factories_; }
  const RuntimeStats& stats() const { return stats_; }

  // ---- node wrapper operations (remote installation) ----------------------

  // Installs a component instance on `node`: transfers its code from
  // `code_origin` (skipped when local), instantiates via the factory
  // registry, and reports the new instance id. The instance is not started.
  void install(const spec::ComponentDef& def, net::NodeId node,
               planner::FactorBindings factors, net::NodeId code_origin,
               std::function<void(util::Expected<RuntimeInstanceId>)> done);

  // Binds `client`'s required interface `iface` to `server`.
  util::Status wire(RuntimeInstanceId client, const std::string& iface,
                    RuntimeInstanceId server);

  util::Status start(RuntimeInstanceId id);
  util::Status stop(RuntimeInstanceId id);

  // Tears an instance down (stop + remove). Wires pointing at it dangle and
  // fail subsequent calls — redeployment must rewire first.
  util::Status uninstall(RuntimeInstanceId id);

  // ---- live migration (ROADMAP item 2) ------------------------------------

  // Moves `from`'s component state to `to`: prepare_migration on the old
  // component (quiesce/flush), export_state, ship the snapshot bytes over
  // the network, import_state on the new component. Both instances must be
  // live; `to` should already be started so its on_start registrations
  // exist when the state lands. `done` receives the import status (ok with
  // zero bytes moved when the component exports no state).
  void transfer_state(RuntimeInstanceId from, RuntimeInstanceId to,
                      std::function<void(util::Status)> done);

  // Full live migration of `id` to `to_node`: install a replacement there
  // (code from `code_origin`), copy wires and planner metadata, start it,
  // transfer state, then hand the replacement id to `done`. The OLD instance
  // keeps running until `drain` of simulated time after cutover — callers
  // rewire inbound traffic to the new id when `done` fires, and stragglers
  // still in flight toward the old instance complete (or fail into the
  // retry layer) before it is uninstalled. kDeadTarget after that is the
  // retry layer's cue to rebind.
  void migrate(RuntimeInstanceId id, net::NodeId to_node,
               net::NodeId code_origin, sim::Duration drain,
               std::function<void(util::Expected<RuntimeInstanceId>)> done);

  // Fault injection: crashes a node — every instance hosted there is torn
  // down (without orderly on_stop: a crash, not a shutdown) and the ids are
  // returned. Requests in flight toward those instances fail at delivery.
  std::vector<RuntimeInstanceId> crash_node(net::NodeId node);

  bool exists(RuntimeInstanceId id) const {
    auto it = instances_.find(id);
    return it != instances_.end() && !it->second.crashed;
  }
  // True when the instance (or anything it calls, transitively) holds a wire
  // to a crashed or removed instance. Such an instance is alive but cannot
  // serve forwarded requests; plans must not hand it out for reuse.
  bool has_dangling_wires(RuntimeInstanceId id) const;
  Instance& instance(RuntimeInstanceId id);
  const Instance& instance(RuntimeInstanceId id) const;
  std::vector<RuntimeInstanceId> instances_on(net::NodeId node) const;
  // Every live (non-tombstoned) instance id, ascending — for diagnostics
  // that scan components regardless of which node or service owns them.
  std::vector<RuntimeInstanceId> instance_ids() const {
    std::vector<RuntimeInstanceId> out;
    for (const auto& [id, inst] : instances_) {
      if (!inst.crashed) out.push_back(id);
    }
    return out;
  }
  std::size_t instance_count() const { return instances_.size(); }

  // ---- request routing ---------------------------------------------------

  // Component-to-component call along a wire.
  void call(RuntimeInstanceId from, const std::string& iface, Request request,
            ResponseCallback done);

  // Call into an instance from an arbitrary node (client applications and
  // proxies use this).
  void invoke_from_node(net::NodeId from, RuntimeInstanceId target,
                        Request request, ResponseCallback done);

  // As above, with a delivery deadline: if no response lands within
  // `timeout`, the callback fires exactly once with a TransportError::
  // kTimeout response (any late real response is discarded). A zero timeout
  // means no deadline, identical to the overload above.
  void invoke_from_node(net::NodeId from, RuntimeInstanceId target,
                        Request request, ResponseCallback done,
                        sim::Duration timeout);

  // Seeds the RNG behind per-hop loss draws. The RNG is consulted only on
  // links with loss > 0, so runs without lossy links never draw from it and
  // stay bit-identical regardless of the seed.
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = util::Rng(seed); }

  // ---- low-level cost primitives ------------------------------------------

  // Moves `bytes` from `from` to `to` over the network, invoking `delivered`
  // when the last hop completes. Local (from == to) delivery is immediate.
  // Link state and loss are consulted hop by hop: a message whose next hop
  // is down (or loses the loss draw) is dropped, reported through `dropped`
  // when provided (kUnreachable: no live route at send time; kDropped: lost
  // mid-route). With a null `dropped`, losses are silent — legacy behavior.
  void send_bytes(net::NodeId from, net::NodeId to, std::uint64_t bytes,
                  std::function<void()> delivered,
                  std::function<void(TransportError)> dropped = nullptr);

  // Serial CPU of a node: runs `done` after `units` of CPU complete, queuing
  // behind earlier work on the same node.
  void charge_cpu(net::NodeId node, double units, std::function<void()> done);

  // Reserves `lid` for a `bytes`-sized message starting no earlier than now;
  // returns the simulated time the message reaches the far end (queueing +
  // serialization + propagation). Exposed for the transfer walker and tests.
  sim::Time reserve_link(net::LinkId lid, std::uint64_t bytes);

  // Cumulative scheduled busy time of a node's CPU / a link (seconds of
  // simulated work committed so far — the basis for utilization telemetry).
  double node_busy_seconds(net::NodeId node) const;
  double link_busy_seconds(net::LinkId link) const;

 private:
  void deliver(RuntimeInstanceId target, Request request,
               net::NodeId reply_to, ResponseCallback done);

  sim::Simulator& sim_;
  net::Network& network_;
  ComponentFactoryRegistry factories_;
  std::map<RuntimeInstanceId, Instance> instances_;
  RuntimeInstanceId next_id_ = 1;
  std::vector<sim::Time> node_cpu_free_;
  std::vector<sim::Time> link_free_;
  std::vector<double> node_busy_s_;
  std::vector<double> link_busy_s_;
  RuntimeStats stats_;
  // Seeded RNG for per-hop loss draws; untouched unless some link has
  // loss > 0 (see set_fault_seed).
  util::Rng fault_rng_{0x5AFEC0DEDB01DFULL};
  // Component code staged per node by earlier installs: (node, component
  // name). A repeat install transfers only a zero-byte control round — the
  // node wrapper keeps the code on disk. Cleared per node on crash.
  std::set<std::pair<std::uint32_t, std::string>> code_present_;
};

}  // namespace psf::runtime
