// Jini-like attribute-based lookup service (§3.2: "Clients locate and
// download the proxy by using an attribute-based lookup service").
//
// The registry itself is passive data anchored at a node; the network costs
// of querying it and downloading the generic proxy are charged by
// GenericProxy::bind().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "util/status.hpp"

namespace psf::runtime {

class GenericServer;

// What a repeat bind transfers instead of the full proxy code: a freshness
// check against the registry (the node already holds the code).
inline constexpr std::uint64_t kProxyRevalidateBytes = 256;

struct ServiceAdvertisement {
  std::string service_name;
  std::map<std::string, std::string> attributes;
  net::NodeId server_host;            // node hosting the generic server
  std::uint64_t proxy_code_bytes = 32 * 1024;
  GenericServer* server = nullptr;
};

class LookupService {
 public:
  explicit LookupService(net::NodeId host) : host_(host) {}

  net::NodeId host() const { return host_; }

  util::Status register_service(ServiceAdvertisement ad);
  util::Status unregister_service(const std::string& service_name);

  const ServiceAdvertisement* find(const std::string& service_name) const;

  // All services whose attributes contain every (key, value) in `filter`.
  std::vector<const ServiceAdvertisement*> query(
      const std::map<std::string, std::string>& filter) const;

  std::size_t size() const { return services_.size(); }

  // ---- per-client-node proxy-code cache ------------------------------------
  // The registry remembers which nodes already downloaded a service's proxy
  // code; GenericProxy::bind consults this to shrink repeat transfers to
  // kProxyRevalidateBytes. Unregistering a service drops its marks (a
  // re-registered service may ship different proxy code).

  struct ProxyCacheStats {
    std::uint64_t downloads = 0;   // full proxy-code transfers
    std::uint64_t cache_hits = 0;  // revalidations served from node cache
  };

  bool proxy_code_cached(const std::string& service_name,
                         net::NodeId node) const;
  // Records a completed download/revalidation for (service, node).
  void note_proxy_download(const std::string& service_name, net::NodeId node);
  const ProxyCacheStats& proxy_cache_stats() const { return proxy_stats_; }

 private:
  net::NodeId host_;
  std::map<std::string, ServiceAdvertisement> services_;
  std::set<std::pair<std::string, std::uint32_t>> proxy_code_nodes_;
  ProxyCacheStats proxy_stats_;
};

}  // namespace psf::runtime
