// Jini-like attribute-based lookup service (§3.2: "Clients locate and
// download the proxy by using an attribute-based lookup service").
//
// The registry itself is passive data anchored at a node; the network costs
// of querying it and downloading the generic proxy are charged by
// GenericProxy::bind().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/status.hpp"

namespace psf::runtime {

class GenericServer;

struct ServiceAdvertisement {
  std::string service_name;
  std::map<std::string, std::string> attributes;
  net::NodeId server_host;            // node hosting the generic server
  std::uint64_t proxy_code_bytes = 32 * 1024;
  GenericServer* server = nullptr;
};

class LookupService {
 public:
  explicit LookupService(net::NodeId host) : host_(host) {}

  net::NodeId host() const { return host_; }

  util::Status register_service(ServiceAdvertisement ad);
  util::Status unregister_service(const std::string& service_name);

  const ServiceAdvertisement* find(const std::string& service_name) const;

  // All services whose attributes contain every (key, value) in `filter`.
  std::vector<const ServiceAdvertisement*> query(
      const std::map<std::string, std::string>& filter) const;

  std::size_t size() const { return services_.size(); }

 private:
  net::NodeId host_;
  std::map<std::string, ServiceAdvertisement> services_;
};

}  // namespace psf::runtime
