// The mail service's declarative specification (paper Fig. 2, in PSDL) and
// the credential→property translator for its environments.
#pragma once

#include <memory>
#include <string>

#include "planner/environment.hpp"
#include "spec/model.hpp"

namespace psf::mail {

// The PSDL source text — kept as text (not a builder) so the production
// path exercises the same parser a service developer would use.
const std::string& mail_spec_source();

// Parsed + validated specification. Aborts on parse failure (the source is
// a compiled-in constant; failure is a bug).
spec::ServiceSpec mail_service_spec();

// Maps network credentials to the mail service's properties:
//   node:  TrustLevel <- "trust" (interval), Confidentiality <- "secure"
//   link:  Confidentiality <- "secure" (default F — untagged links are
//          assumed insecure, failing closed)
std::shared_ptr<planner::CredentialMapTranslator> mail_translator();

}  // namespace psf::mail
