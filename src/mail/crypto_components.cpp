#include "mail/crypto_components.hpp"

#include "util/logging.hpp"

namespace psf::mail {

crypto::SymmetricKey tunnel_key(const MailServiceConfig& config) {
  return crypto::derive_key(config.master_secret, "confidential-tunnel");
}

std::vector<std::uint8_t> tunnel_image(std::uint64_t bytes,
                                       std::uint64_t nonce) {
  // Cap the materialized image; the cost model below still charges for the
  // full length, so large messages keep realistic CPU cost without large
  // allocations in tight simulation loops.
  const std::size_t materialized =
      static_cast<std::size_t>(std::min<std::uint64_t>(bytes, 4096));
  std::vector<std::uint8_t> image(materialized);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>((nonce + i * 131) & 0xFF);
  }
  return image;
}

void EncryptorComponent::handle_request(const runtime::Request& request,
                                        runtime::ResponseCallback done) {
  const crypto::SymmetricKey key = tunnel_key(*config_);
  const std::uint64_t nonce = (nonce_ += 2);

  auto envelope = std::make_shared<TunnelBody>();
  envelope->inner_op = request.op;
  envelope->inner = request.body;
  envelope->inner_wire_bytes = request.wire_bytes;
  envelope->principal = request.principal;
  envelope->blob =
      crypto::seal(key, nonce, tunnel_image(request.wire_bytes, nonce));
  ++stats_.requests_sealed;

  runtime::Request sealed;
  sealed.op = kTunnelOp;
  sealed.body = envelope;
  sealed.wire_bytes = request.wire_bytes + 48;  // nonce + MAC + framing

  const double units = crypto::crypto_cpu_cost(request.wire_bytes);
  charge_cpu(units, [this, key, sealed = std::move(sealed),
                     done = std::move(done)]() mutable {
    call("DecryptorInterface", std::move(sealed),
         [this, key, done = std::move(done)](runtime::Response response) {
           // The return path arrives sealed; verify and unwrap it.
           const auto* reply = runtime::body_as<TunnelBody>(response);
           if (reply == nullptr) {
             // Plain response (e.g. an error raised before the decryptor).
             done(std::move(response));
             return;
           }
           std::vector<std::uint8_t> image;
           if (!crypto::unseal(key, reply->blob, image)) {
             ++stats_.mac_failures;
             done(runtime::Response::failure(
                 "tunnel MAC verification failed on response"));
             return;
           }
           ++stats_.responses_unsealed;
           runtime::Response plain;
           plain.ok = response.ok;
           plain.error = response.error;
           plain.transport = response.transport;
           plain.body = reply->inner;
           plain.wire_bytes = reply->inner_wire_bytes;
           const double resp_units =
               crypto::crypto_cpu_cost(reply->inner_wire_bytes);
           charge_cpu(resp_units, [plain = std::move(plain),
                                   done = std::move(done)]() mutable {
             done(std::move(plain));
           });
         });
  });
}

void DecryptorComponent::handle_request(const runtime::Request& request,
                                        runtime::ResponseCallback done) {
  if (request.op != kTunnelOp) {
    done(runtime::Response::failure(
        "Decryptor expects sealed tunnel traffic, got op '" + request.op +
        "'"));
    return;
  }
  const auto* envelope = runtime::body_as<TunnelBody>(request);
  if (envelope == nullptr) {
    done(runtime::Response::failure("malformed tunnel envelope"));
    return;
  }
  const crypto::SymmetricKey key = tunnel_key(*config_);
  std::vector<std::uint8_t> image;
  if (!crypto::unseal(key, envelope->blob, image)) {
    ++stats_.mac_failures;
    done(runtime::Response::failure("tunnel MAC verification failed"));
    return;
  }
  ++stats_.responses_unsealed;

  runtime::Request plain;
  plain.op = envelope->inner_op;
  plain.body = envelope->inner;
  plain.wire_bytes = envelope->inner_wire_bytes;
  plain.principal = envelope->principal;

  const double units = crypto::crypto_cpu_cost(envelope->inner_wire_bytes);
  charge_cpu(units, [this, key, plain = std::move(plain),
                     done = std::move(done)]() mutable {
    call("ServerInterface", std::move(plain),
         [this, key, done = std::move(done)](runtime::Response response) {
           if (!response.ok) {
             // Failures (including transport errors from a dead upstream
             // wire) travel back plain; the encryptor forwards them verbatim.
             done(std::move(response));
             return;
           }
           // Seal the response for the trip back across the insecure link.
           const std::uint64_t nonce = (nonce_ += 2);
           auto reply = std::make_shared<TunnelBody>();
           reply->inner = response.body;
           reply->inner_wire_bytes = response.wire_bytes;
           reply->blob = crypto::seal(
               key, nonce, tunnel_image(response.wire_bytes, nonce));
           ++stats_.requests_sealed;

           runtime::Response sealed;
           sealed.ok = response.ok;
           sealed.error = response.error;
           sealed.body = reply;
           sealed.wire_bytes = response.wire_bytes + 48;
           const double resp_units =
               crypto::crypto_cpu_cost(response.wire_bytes);
           charge_cpu(resp_units, [sealed = std::move(sealed),
                                   done = std::move(done)]() mutable {
             done(std::move(sealed));
           });
         });
  });
}

}  // namespace psf::mail
