// Encryptor / Decryptor tunnel components.
//
// The planner inserts an Encryptor→Decryptor pair when a linkage must cross
// an environment that breaks the Confidentiality property (paper §3.3 and
// Fig. 6). They are *transparent* components: they forward any operation
// unchanged, wrapping it in a sealed envelope for the insecure segment.
//
// Simulation shortcut (documented in DESIGN.md): the envelope seals a
// deterministic byte image of the same length as the inner message rather
// than a serialized form of it — the cipher and MAC run for real (cost and
// integrity checking are genuine), while the structured body rides along
// for the in-process simulation.
#pragma once

#include <cstdint>

#include "crypto/cipher.hpp"
#include "mail/config.hpp"
#include "runtime/smock.hpp"

namespace psf::mail {

inline constexpr const char* kTunnelOp = "enc.tunnel";

struct TunnelBody : runtime::MessageBody {
  std::string inner_op;
  std::shared_ptr<const runtime::MessageBody> inner;
  std::uint64_t inner_wire_bytes = 0;
  std::string principal;
  crypto::SealedBlob blob;  // seal of a byte image of the inner message
};

struct TunnelStats {
  std::uint64_t requests_sealed = 0;
  std::uint64_t responses_unsealed = 0;
  std::uint64_t mac_failures = 0;
};

class EncryptorComponent : public runtime::Component {
 public:
  explicit EncryptorComponent(MailConfigPtr config)
      : config_(std::move(config)) {}

  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override;

  const TunnelStats& tunnel_stats() const { return stats_; }

 private:
  MailConfigPtr config_;
  TunnelStats stats_;
  std::uint64_t nonce_ = 0;
};

class DecryptorComponent : public runtime::Component {
 public:
  explicit DecryptorComponent(MailConfigPtr config)
      : config_(std::move(config)) {}

  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override;

  const TunnelStats& tunnel_stats() const { return stats_; }

 private:
  MailConfigPtr config_;
  TunnelStats stats_;
  std::uint64_t nonce_ = 1;  // distinct stream from the encryptor side
};

// The shared tunnel key: in a deployed system this would be negotiated at
// deployment time; both ends derive it from the service master secret.
crypto::SymmetricKey tunnel_key(const MailServiceConfig& config);

// Deterministic byte image of a message of `bytes` length (what the tunnel
// actually seals).
std::vector<std::uint8_t> tunnel_image(std::uint64_t bytes,
                                       std::uint64_t nonce);

}  // namespace psf::mail
