// MailServer: the authoritative home component. Holds every account, applies
// replica sync batches through its coherence directory, and re-encrypts
// sensitive messages from the sender's key to the recipient's key on
// delivery (paper §2).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "coherence/directory.hpp"
#include "mail/config.hpp"
#include "mail/types.hpp"
#include "runtime/smock.hpp"

namespace psf::mail {

struct MailServerStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t syncs_applied = 0;
  std::uint64_t sync_updates_applied = 0;
  std::uint64_t reencryptions = 0;
};

class MailServerComponent : public runtime::Component {
 public:
  explicit MailServerComponent(MailConfigPtr config)
      : config_(std::move(config)) {}

  void on_start() override;
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override;

  // Diagnostics / test access.
  const Account* find_account(const std::string& user) const;
  std::size_t inbox_size(const std::string& user) const;
  const MailServerStats& mail_stats() const { return stats_; }
  coherence::CoherenceDirectory* directory() { return directory_.get(); }

 private:
  void handle_send(const runtime::Request& request,
                   runtime::ResponseCallback done);
  void handle_receive(const runtime::Request& request,
                      runtime::ResponseCallback done);
  void handle_sync(const runtime::Request& request,
                   runtime::ResponseCallback done);
  void handle_register_replica(const runtime::Request& request,
                               runtime::ResponseCallback done);

  // Stores the message (recipient inbox + sender's sent folder) and notifies
  // the directory. `origin` is the replica a sync came from (0 = direct).
  void apply_send(const MailMessage& message,
                  runtime::RuntimeInstanceId origin);

  Account& ensure_account(const std::string& user);

  // Re-seals a sensitive message from its current key owner to `recipient`;
  // returns the crypto CPU units spent (0 for plaintext messages).
  double reencrypt_for(MailMessage& message, const std::string& recipient);

  MailConfigPtr config_;
  std::map<std::string, Account> accounts_;
  std::unique_ptr<coherence::CoherenceDirectory> directory_;
  MailServerStats stats_;
};

}  // namespace psf::mail
