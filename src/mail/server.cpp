#include "mail/server.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace psf::mail {

void MailServerComponent::on_start() {
  directory_ = std::make_unique<coherence::CoherenceDirectory>(
      runtime(), self(), ops::kPush, nullptr, config_->directory_tuning);
  if (config_->coherence_telemetry) {
    directory_->attach_telemetry(config_->coherence_telemetry.get());
  }
}

void MailServerComponent::handle_request(const runtime::Request& request,
                                         runtime::ResponseCallback done) {
  if (request.op == ops::kSend) {
    handle_send(request, std::move(done));
  } else if (request.op == ops::kReceive) {
    handle_receive(request, std::move(done));
  } else if (request.op == ops::kSync) {
    handle_sync(request, std::move(done));
  } else if (request.op == ops::kRegisterReplica) {
    handle_register_replica(request, std::move(done));
  } else if (request.op == ops::kCreateAccount) {
    const auto* body = runtime::body_as<AccountBody>(request);
    if (body == nullptr) {
      done(runtime::Response::failure("malformed create_account"));
      return;
    }
    ensure_account(body->user);
    config_->keys->provision_user(body->user, kMaxSensitivity);
    done(runtime::Response{});
  } else if (request.op == ops::kAddContact) {
    const auto* body = runtime::body_as<ContactBody>(request);
    if (body == nullptr) {
      done(runtime::Response::failure("malformed add_contact"));
      return;
    }
    ensure_account(body->user).contacts.insert(body->contact);
    done(runtime::Response{});
  } else if (request.op == ops::kGetContacts) {
    const auto* body = runtime::body_as<AccountBody>(request);
    if (body == nullptr) {
      done(runtime::Response::failure("malformed get_contacts"));
      return;
    }
    auto result = std::make_shared<ContactsResultBody>();
    if (const Account* account = find_account(body->user)) {
      result->contacts = account->contacts;
    }
    runtime::Response response;
    response.body = result;
    response.wire_bytes = 64 + 32 * result->contacts.size();
    done(std::move(response));
  } else {
    done(runtime::Response::failure("MailServer: unknown op '" + request.op +
                                    "'"));
  }
}

void MailServerComponent::handle_send(const runtime::Request& request,
                                      runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<SendBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed send"));
    return;
  }
  ++stats_.sends;
  apply_send(body->message, /*origin=*/0);
  runtime::Response response;
  response.wire_bytes = 128;  // acknowledgement
  done(std::move(response));
}

void MailServerComponent::handle_receive(const runtime::Request& request,
                                         runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<ReceiveBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed receive"));
    return;
  }
  ++stats_.receives;
  auto result = std::make_shared<ReceiveResultBody>();
  double crypto_units = 0.0;
  if (const Account* account = find_account(body->user)) {
    const auto& inbox = account->inbox.messages;
    const std::size_t limit =
        std::min({body->max_messages, config_->receive_batch, inbox.size()});
    for (std::size_t i = inbox.size() - limit; i < inbox.size(); ++i) {
      MailMessage copy = inbox[i];
      crypto_units += reencrypt_for(copy, body->user);
      result->messages.push_back(std::move(copy));
    }
  }
  runtime::Response response;
  response.body = result;
  response.wire_bytes = receive_result_wire_bytes(result->messages);
  if (crypto_units > 0.0) {
    charge_cpu(crypto_units,
               [response = std::move(response), done = std::move(done)]() mutable {
                 done(std::move(response));
               });
  } else {
    done(std::move(response));
  }
}

void MailServerComponent::handle_sync(const runtime::Request& request,
                                      runtime::ResponseCallback done) {
  const auto* batch = runtime::body_as<coherence::UpdateBatch>(request);
  if (batch == nullptr) {
    done(runtime::Response::failure("malformed sync batch"));
    return;
  }
  ++stats_.syncs_applied;
  for (const coherence::Update& update : batch->updates) {
    const auto* send = dynamic_cast<const SendBody*>(update.payload.get());
    if (send == nullptr) {
      PSF_WARN() << "MailServer: sync update with non-send payload; skipped";
      continue;
    }
    apply_send(send->message, batch->replica_id);
    ++stats_.sync_updates_applied;
  }
  runtime::Response response;
  response.wire_bytes = 128;
  done(std::move(response));
}

void MailServerComponent::handle_register_replica(
    const runtime::Request& request, runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<RegisterReplicaBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed register_replica"));
    return;
  }
  coherence::ViewSubscription subscription;
  subscription.object_keys = body->cached_users;
  subscription.wildcard = body->wildcard;
  directory_->register_replica(body->replica_instance,
                               std::move(subscription));
  runtime::Response response;
  response.wire_bytes = 64;
  done(std::move(response));
}

void MailServerComponent::apply_send(const MailMessage& message,
                                     runtime::RuntimeInstanceId origin) {
  Account& recipient = ensure_account(message.to);
  recipient.inbox.messages.push_back(message);
  auto sender = accounts_.find(message.from);
  if (sender != accounts_.end()) {
    sender->second.sent.messages.push_back(message);
  }
  coherence::Update update;
  update.descriptor.object_key = message.to;
  update.descriptor.field = "inbox";
  update.descriptor.bytes = send_wire_bytes(message);
  auto payload = std::make_shared<SendBody>();
  payload->message = message;
  update.payload = std::move(payload);
  directory_->on_update(update, origin);
}

Account& MailServerComponent::ensure_account(const std::string& user) {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    Account account;
    account.user = user;
    config_->keys->provision_user(user, kMaxSensitivity);
    it = accounts_.emplace(user, std::move(account)).first;
  }
  return it->second;
}

const Account* MailServerComponent::find_account(
    const std::string& user) const {
  auto it = accounts_.find(user);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::size_t MailServerComponent::inbox_size(const std::string& user) const {
  const Account* account = find_account(user);
  return account == nullptr ? 0 : account->inbox.messages.size();
}

double MailServerComponent::reencrypt_for(MailMessage& message,
                                          const std::string& recipient) {
  if (message.sensitivity == 0 || !message.sealed) return 0.0;
  if (message.key_owner == recipient) return 0.0;  // already re-encrypted
  auto sender_key = config_->keys->key(
      crypto::KeyRef{message.key_owner, message.sensitivity});
  auto recipient_key = config_->keys->key(
      crypto::KeyRef{recipient, message.sensitivity});
  if (!sender_key || !recipient_key) {
    PSF_WARN() << "MailServer: missing key for re-encryption of message "
               << message.id;
    return 0.0;
  }
  std::vector<std::uint8_t> plain;
  if (!crypto::unseal(*sender_key, *message.sealed, plain)) {
    PSF_WARN() << "MailServer: MAC mismatch re-encrypting message "
               << message.id;
    return 0.0;
  }
  const double cost = 2.0 * crypto::crypto_cpu_cost(plain.size());
  message.sealed = crypto::seal(*recipient_key, message.id ^ 0x5EA1ED,
                                plain);
  message.key_owner = recipient;
  ++stats_.reencryptions;
  return cost;
}

}  // namespace psf::mail
