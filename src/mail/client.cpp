#include "mail/client.hpp"

#include "util/logging.hpp"

namespace psf::mail {

bool MailClientComponent::supports(const std::string& /*op*/) const {
  return true;
}

bool ViewMailClientComponent::supports(const std::string& op) const {
  return op == ops::kSend || op == ops::kReceive;
}

void MailClientComponent::handle_request(const runtime::Request& request,
                                         runtime::ResponseCallback done) {
  if (!supports(request.op)) {
    ++stats_.rejected_ops;
    done(runtime::Response::failure("operation '" + request.op +
                                    "' not available on this client view"));
    return;
  }
  if (request.op == ops::kSend) {
    handle_send(request, std::move(done));
  } else if (request.op == ops::kReceive) {
    handle_receive(request, std::move(done));
  } else {
    // Account management passes straight through to the server side.
    call("ServerInterface", request, std::move(done));
  }
}

void MailClientComponent::handle_send(const runtime::Request& request,
                                      runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<SendBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed send"));
    return;
  }
  ++stats_.sends;

  auto outgoing = std::make_shared<SendBody>();
  outgoing->message = body->message;
  double crypto_units = 0.0;
  if (outgoing->message.sensitivity > 0 && !outgoing->message.sealed) {
    auto key = config_->keys->key(crypto::KeyRef{
        outgoing->message.from, outgoing->message.sensitivity});
    if (!key) {
      done(runtime::Response::failure("sender has no key at level " +
                                      std::to_string(
                                          outgoing->message.sensitivity)));
      return;
    }
    crypto_units = crypto::crypto_cpu_cost(outgoing->message.plaintext.size());
    outgoing->message.sealed = crypto::seal(
        *key, outgoing->message.id, outgoing->message.plaintext);
    outgoing->message.key_owner = outgoing->message.from;
    outgoing->message.plaintext.clear();
  }

  runtime::Request forwarded;
  forwarded.op = ops::kSend;
  forwarded.body = outgoing;
  forwarded.wire_bytes = send_wire_bytes(outgoing->message);
  forwarded.principal = request.principal;

  auto send_it = [this, forwarded = std::move(forwarded),
                  done = std::move(done)]() mutable {
    call("ServerInterface", std::move(forwarded), std::move(done));
  };
  if (crypto_units > 0.0) {
    charge_cpu(crypto_units, std::move(send_it));
  } else {
    send_it();
  }
}

void MailClientComponent::handle_receive(const runtime::Request& request,
                                         runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<ReceiveBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed receive"));
    return;
  }
  ++stats_.receives;
  const std::string user = body->user;

  call("ServerInterface", request,
       [this, user, done = std::move(done)](runtime::Response response) {
         if (!response.ok) {
           done(std::move(response));
           return;
         }
         const auto* result = runtime::body_as<ReceiveResultBody>(response);
         if (result == nullptr) {
           done(std::move(response));
           return;
         }
         // Decrypt and verify every sealed message for the local user.
         auto plain = std::make_shared<ReceiveResultBody>();
         double crypto_units = 0.0;
         for (const MailMessage& m : result->messages) {
           MailMessage copy = m;
           if (copy.sealed) {
             auto key = config_->keys->key(
                 crypto::KeyRef{copy.key_owner, copy.sensitivity});
             std::vector<std::uint8_t> text;
             if (key && crypto::unseal(*key, *copy.sealed, text)) {
               crypto_units += crypto::crypto_cpu_cost(text.size());
               copy.plaintext = std::move(text);
               copy.sealed.reset();
               ++stats_.messages_decrypted;
             } else {
               ++stats_.mac_failures;
               PSF_WARN() << "MailClient: failed to unseal message "
                          << copy.id;
             }
           }
           plain->messages.push_back(std::move(copy));
         }
         runtime::Response out;
         out.body = plain;
         out.wire_bytes = response.wire_bytes;
         if (crypto_units > 0.0) {
           charge_cpu(crypto_units, [out = std::move(out),
                                     done = std::move(done)]() mutable {
             done(std::move(out));
           });
         } else {
           done(std::move(out));
         }
       });
}

}  // namespace psf::mail
