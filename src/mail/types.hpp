// Wire types and operation names of the security-sensitive mail service
// (paper §2): accounts, folders, contact lists, send/receive, and per-message
// sensitivity levels with transparent encryption.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/cipher.hpp"
#include "runtime/message.hpp"

namespace psf::mail {

// Operation names.
namespace ops {
inline constexpr const char* kSend = "mail.send";
inline constexpr const char* kReceive = "mail.receive";
inline constexpr const char* kCreateAccount = "mail.create_account";
inline constexpr const char* kAddContact = "mail.add_contact";
inline constexpr const char* kGetContacts = "mail.get_contacts";
inline constexpr const char* kSync = "mail.sync";            // replica -> home
inline constexpr const char* kPush = "mail.push";            // home -> replica
inline constexpr const char* kRegisterReplica = "mail.register_replica";
}  // namespace ops

// The paper's sensitivity levels range over the TrustLevel interval (1, 5);
// 0 means "not sensitive" (no encryption).
inline constexpr std::int64_t kMaxSensitivity = 5;

struct MailMessage {
  std::uint64_t id = 0;
  std::string from;
  std::string to;
  std::string subject;
  std::int64_t sensitivity = 0;

  // Exactly one of `plaintext` / `sealed` is populated: a message of
  // sensitivity > 0 travels and is stored sealed under (key_owner,
  // sensitivity); the service re-seals from sender key to recipient key on
  // delivery (paper §2: "transforms these messages to those encrypted to the
  // recipient's sensitivity upon a receive").
  std::vector<std::uint8_t> plaintext;
  std::optional<crypto::SealedBlob> sealed;
  std::string key_owner;  // whose key sealed it (sender until re-encryption)

  std::uint64_t body_bytes() const {
    return sealed ? sealed->wire_size() : plaintext.size();
  }
};

struct Folder {
  std::vector<MailMessage> messages;
};

struct Account {
  std::string user;
  std::set<std::string> contacts;
  Folder inbox;
  Folder sent;
};

// ---- request/response bodies -----------------------------------------------

struct SendBody : runtime::MessageBody {
  MailMessage message;
};

struct ReceiveBody : runtime::MessageBody {
  std::string user;
  std::size_t max_messages = 16;
  // Request messages above the serving replica's trust level too; such a
  // request cannot be served from a lower-trust cache and is forwarded to
  // the home server (this is what makes the view's RRF real at run time).
  bool include_high_sensitivity = false;
};

struct ReceiveResultBody : runtime::MessageBody {
  std::vector<MailMessage> messages;
};

struct AccountBody : runtime::MessageBody {
  std::string user;
};

struct ContactBody : runtime::MessageBody {
  std::string user;
  std::string contact;
};

struct ContactsResultBody : runtime::MessageBody {
  std::set<std::string> contacts;
};

struct RegisterReplicaBody : runtime::MessageBody {
  std::uint64_t replica_instance = 0;
  std::set<std::string> cached_users;
  bool wildcard = false;
};

// Wire-size helpers: header + body estimate, used for the network cost model.
std::uint64_t send_wire_bytes(const MailMessage& message);
std::uint64_t receive_result_wire_bytes(const std::vector<MailMessage>& msgs);

}  // namespace psf::mail
