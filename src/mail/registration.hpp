// Glue: registers the mail component factories with a runtime (the "mobile
// code" base) and builds the ServiceRegistration handed to a GenericServer.
#pragma once

#include "mail/config.hpp"
#include "runtime/generic.hpp"

namespace psf::mail {

// Registers factories for all six mail components. The factories capture
// `config`, which is how scenario knobs (coherence policy, keystore) reach
// dynamically deployed instances.
util::Status register_mail_factories(runtime::ComponentFactoryRegistry& reg,
                                     MailConfigPtr config);

// A registration that pre-places the primary MailServer at `home` and
// serves component code from there.
runtime::ServiceRegistration mail_registration(net::NodeId home);

}  // namespace psf::mail
