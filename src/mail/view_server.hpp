// ViewMailServer: a data view of MailServer (paper §3.1) — caches a subset
// of account state at a lower-trust node, serves what it can locally, and
// forwards the rest upstream through its ServerInterface wire (which the
// planner may have routed through an Encryptor/Decryptor pair).
//
// Trust semantics: the view's TrustLevel factor (bound by the planner from
// the node environment) caps the message sensitivity it may store or
// decrypt. Sends above the cap forward upstream uncached; receives asking
// for high-sensitivity content forward upstream. This is what grounds the
// spec's RRF at run time: with the case-study workload (20% high-
// sensitivity traffic) the view forwards ~0.2 of its requests.
//
// Coherence: locally-applied sends are queued in a ReplicaCoherence whose
// transport is the component's own upstream wire, so sync batches cross the
// same encrypted chain as requests; the view also runs a directory of its
// own so further downstream views (Seattle behind San Diego) stay coherent.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "coherence/directory.hpp"
#include "coherence/replica.hpp"
#include "mail/config.hpp"
#include "mail/types.hpp"
#include "runtime/smock.hpp"

namespace psf::mail {

struct ViewServerStats {
  std::uint64_t sends_local = 0;
  std::uint64_t sends_forwarded = 0;
  std::uint64_t receives_local = 0;
  std::uint64_t receives_forwarded = 0;
  std::uint64_t pushes_applied = 0;
  std::uint64_t syncs_relayed = 0;

  double forward_fraction() const {
    const double total = static_cast<double>(sends_local + sends_forwarded +
                                             receives_local +
                                             receives_forwarded);
    if (total == 0.0) return 0.0;
    return static_cast<double>(sends_forwarded + receives_forwarded) / total;
  }
};

// The view's exported migration state: its warm account cache. Rides the
// generic StateSnapshot body slot, so the transfer uses the same simulated
// message machinery as everything else.
struct ViewStateSnapshotBody : runtime::MessageBody {
  std::map<std::string, Account> accounts;
};

class ViewMailServerComponent : public runtime::Component {
 public:
  explicit ViewMailServerComponent(MailConfigPtr config)
      : config_(std::move(config)) {}

  void on_start() override;
  void on_stop() override;
  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override;

  // Live-migration hooks: quiesce = flush the coherence queue upstream (the
  // snapshot must not race a half-propagated batch), export = copy the warm
  // cache, import = merge into whatever the replacement has absorbed since
  // its own on_start registered it with the directory.
  void prepare_migration(std::function<void()> done) override;
  std::optional<runtime::StateSnapshot> export_state() override;
  util::Status import_state(const runtime::StateSnapshot& snapshot) override;

  std::int64_t trust_level() const { return trust_level_; }
  const ViewServerStats& view_stats() const { return stats_; }
  std::size_t cached_inbox_size(const std::string& user) const;
  coherence::ReplicaCoherence* replica_coherence() { return replica_.get(); }
  coherence::CoherenceDirectory* directory() { return directory_.get(); }

 private:
  void handle_send(const runtime::Request& request,
                   runtime::ResponseCallback done);
  void handle_receive(const runtime::Request& request,
                      runtime::ResponseCallback done);
  void handle_push(const runtime::Request& request,
                   runtime::ResponseCallback done);
  void handle_sync(const runtime::Request& request,
                   runtime::ResponseCallback done);
  void forward(const runtime::Request& request, runtime::ResponseCallback done);

  void apply_send_locally(const MailMessage& message, bool queue_coherence);

  double reencrypt_for(MailMessage& message, const std::string& recipient);

  MailConfigPtr config_;
  std::int64_t trust_level_ = 1;
  std::map<std::string, Account> cache_;
  std::unique_ptr<coherence::ReplicaCoherence> replica_;
  std::unique_ptr<coherence::CoherenceDirectory> directory_;
  ViewServerStats stats_;
  // Requests deferred while a coherence flush is in flight (the view may
  // not serve stale or mutate in-flight state mid-propagation).
  std::vector<std::pair<runtime::Request, runtime::ResponseCallback>>
      deferred_;
  bool draining_ = false;
};

}  // namespace psf::mail
