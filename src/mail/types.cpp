#include "mail/types.hpp"

namespace psf::mail {

std::uint64_t send_wire_bytes(const MailMessage& message) {
  return 256 + message.body_bytes();  // headers + addressing + body
}

std::uint64_t receive_result_wire_bytes(
    const std::vector<MailMessage>& msgs) {
  std::uint64_t total = 128;
  for (const MailMessage& m : msgs) total += 128 + m.body_bytes();
  return total;
}

}  // namespace psf::mail
