// Shared configuration for the mail service's components.
//
// Component factories capture a shared_ptr to one MailServiceConfig, which
// is how per-scenario knobs (coherence policy) and shared substrates (the
// keystore) reach dynamically deployed instances — the moral equivalent of
// the configuration a Java component would read after class loading.
#pragma once

#include <cstdint>
#include <memory>

#include "coherence/policy.hpp"
#include "crypto/keystore.hpp"
#include "runtime/coherence_telemetry.hpp"

namespace psf::mail {

struct MailServiceConfig {
  std::uint64_t master_secret = 0xC0FFEE12345678ULL;

  // Coherence policy installed into each ViewMailServer replica.
  coherence::CoherencePolicy view_policy = coherence::CoherencePolicy::none();

  // Fan-out tuning for every coherence directory in the service (the home
  // MailServer's and each view's own downstream directory).
  coherence::DirectoryTuning directory_tuning;

  // Optional shared coherence counters; when set, every replica module and
  // directory the service creates records into it (render through
  // runtime::Telemetry::attach_coherence).
  std::shared_ptr<runtime::CoherenceTelemetry> coherence_telemetry;

  // Per-(user, sensitivity-level) keys. Conceptually each node holds only
  // the keys its trust level allows; the release ledger in the keystore
  // records (and tests assert) that invariant.
  std::shared_ptr<crypto::KeyStore> keys =
      std::make_shared<crypto::KeyStore>(0xC0FFEE12345678ULL);

  // Maximum messages returned per receive.
  std::size_t receive_batch = 16;
};

using MailConfigPtr = std::shared_ptr<MailServiceConfig>;

}  // namespace psf::mail
