// MailClient and ViewMailClient — the client-side entry components.
//
// MailClient offers full functionality (send/receive plus the address
// book); ViewMailClient is the paper's *object view* of it, restricting the
// interface to send/receive only (§3.1: "restricts the functionality of the
// MailClient: both support standard send and receive operations, but the
// latter provides additional features such as access to an address book").
//
// Sensitivity handling (paper §2): the client transparently seals outgoing
// message bodies under the sender's key for the message's sensitivity
// level, and unseals (and MAC-verifies) incoming bodies under the
// recipient's key.
#pragma once

#include <cstdint>

#include "mail/config.hpp"
#include "mail/types.hpp"
#include "runtime/smock.hpp"

namespace psf::mail {

struct MailClientStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t messages_decrypted = 0;
  std::uint64_t mac_failures = 0;
  std::uint64_t rejected_ops = 0;
};

class MailClientComponent : public runtime::Component {
 public:
  explicit MailClientComponent(MailConfigPtr config)
      : config_(std::move(config)) {}

  void handle_request(const runtime::Request& request,
                      runtime::ResponseCallback done) override;

  const MailClientStats& client_stats() const { return stats_; }

 protected:
  // Object-view hook: returns true when the op is available. The base class
  // allows everything; ViewMailClient narrows it.
  virtual bool supports(const std::string& op) const;

  MailConfigPtr config_;
  MailClientStats stats_;

 private:
  void handle_send(const runtime::Request& request,
                   runtime::ResponseCallback done);
  void handle_receive(const runtime::Request& request,
                      runtime::ResponseCallback done);
};

class ViewMailClientComponent : public MailClientComponent {
 public:
  explicit ViewMailClientComponent(MailConfigPtr config)
      : MailClientComponent(std::move(config)) {}

 protected:
  bool supports(const std::string& op) const override;
};

}  // namespace psf::mail
