#include "mail/registration.hpp"

#include "mail/client.hpp"
#include "mail/crypto_components.hpp"
#include "mail/mail_spec.hpp"
#include "mail/server.hpp"
#include "mail/view_server.hpp"

namespace psf::mail {

util::Status register_mail_factories(runtime::ComponentFactoryRegistry& reg,
                                     MailConfigPtr config) {
  if (auto st = reg.register_type(
          "MailClient",
          [config]() { return std::make_unique<MailClientComponent>(config); });
      !st) {
    return st;
  }
  if (auto st = reg.register_type("ViewMailClient", [config]() {
        return std::make_unique<ViewMailClientComponent>(config);
      });
      !st) {
    return st;
  }
  if (auto st = reg.register_type("MailServer", [config]() {
        return std::make_unique<MailServerComponent>(config);
      });
      !st) {
    return st;
  }
  if (auto st = reg.register_type("ViewMailServer", [config]() {
        return std::make_unique<ViewMailServerComponent>(config);
      });
      !st) {
    return st;
  }
  if (auto st = reg.register_type("Encryptor", [config]() {
        return std::make_unique<EncryptorComponent>(config);
      });
      !st) {
    return st;
  }
  return reg.register_type("Decryptor", [config]() {
    return std::make_unique<DecryptorComponent>(config);
  });
}

runtime::ServiceRegistration mail_registration(net::NodeId home) {
  runtime::ServiceRegistration registration;
  registration.spec = mail_service_spec();
  registration.code_origin = home;
  registration.initial_placements.push_back(
      runtime::InitialPlacement{"MailServer", home, {}});
  registration.proxy_code_bytes = 48 * 1024;
  registration.attributes = {{"kind", "mail"}, {"security", "sensitive"}};
  return registration;
}

}  // namespace psf::mail
