#include "mail/view_server.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace psf::mail {

void ViewMailServerComponent::on_start() {
  // TrustLevel arrives as a planner-bound factor; hand-built deployments may
  // instead rely on the node's raw "trust" credential.
  auto it = factors().values.find("TrustLevel");
  if (it != factors().values.end() && it->second.is_int()) {
    trust_level_ = it->second.as_int();
  } else {
    trust_level_ = runtime()
                       .network()
                       .node(node())
                       .credentials.get_int("trust", 1);
  }

  replica_ = std::make_unique<coherence::ReplicaCoherence>(
      runtime(), self(),
      [this](runtime::Request request, runtime::ResponseCallback done) {
        call("ServerInterface", std::move(request), std::move(done));
      },
      ops::kSync, config_->view_policy);
  replica_->set_flush_listener([this]() {
    // Serve everything that arrived while the window was full. With a flush
    // window > 1 the listener fires per completed batch; drain only once
    // the window has room again, else the drained requests would just
    // re-defer.
    if (draining_ || replica_->flushing()) return;
    draining_ = true;
    std::vector<std::pair<runtime::Request, runtime::ResponseCallback>> work;
    work.swap(deferred_);
    for (auto& [request, done] : work) {
      handle_request(request, std::move(done));
    }
    draining_ = false;
  });
  directory_ = std::make_unique<coherence::CoherenceDirectory>(
      runtime(), self(), ops::kPush, nullptr, config_->directory_tuning);
  if (config_->coherence_telemetry) {
    replica_->attach_telemetry(config_->coherence_telemetry.get());
    directory_->attach_telemetry(config_->coherence_telemetry.get());
  }

  // Announce ourselves to the home (relayed through any intermediate views,
  // each of which also records us in its own directory).
  auto body = std::make_shared<RegisterReplicaBody>();
  body->replica_instance = self();
  body->wildcard = true;
  runtime::Request request;
  request.op = ops::kRegisterReplica;
  request.body = body;
  request.wire_bytes = 128;
  call("ServerInterface", std::move(request), [](runtime::Response response) {
    if (!response.ok) {
      PSF_WARN() << "ViewMailServer: replica registration failed: "
                 << response.error;
    }
  });
}

void ViewMailServerComponent::on_stop() {
  if (replica_) replica_->flush();
  if (directory_) directory_->flush_staged();
}

void ViewMailServerComponent::prepare_migration(std::function<void()> done) {
  if (directory_) directory_->flush_staged();
  if (!replica_) {
    done();
    return;
  }
  // Push queued write-backs upstream before the snapshot is cut, so the
  // exported cache and the home's authoritative state agree. flush() always
  // completes its callback, even when the queue is empty or the flush
  // window is full (queued updates then stay local — they still travel
  // inside the exported cache_).
  replica_->flush(std::move(done));
}

std::optional<runtime::StateSnapshot> ViewMailServerComponent::export_state() {
  auto body = std::make_shared<ViewStateSnapshotBody>();
  body->accounts = cache_;
  runtime::StateSnapshot snapshot;
  for (const auto& [user, account] : body->accounts) {
    snapshot.bytes += 64;  // per-account framing
    for (const MailMessage& message : account.inbox.messages) {
      snapshot.bytes += send_wire_bytes(message);
    }
  }
  snapshot.body = std::move(body);
  return snapshot;
}

util::Status ViewMailServerComponent::import_state(
    const runtime::StateSnapshot& snapshot) {
  const auto* body =
      dynamic_cast<const ViewStateSnapshotBody*>(snapshot.body.get());
  if (body == nullptr) {
    return util::invalid_argument(
        "ViewMailServer: snapshot body is not a view state snapshot");
  }
  // Merge, don't overwrite: pushes may already have landed here between our
  // on_start and the snapshot's arrival. Imported messages are older than
  // anything absorbed live, so they go in front; duplicates (same message
  // id) are dropped.
  for (const auto& [user, imported] : body->accounts) {
    Account& account = cache_[user];
    if (account.user.empty()) account.user = imported.user;
    account.contacts.insert(imported.contacts.begin(),
                            imported.contacts.end());
    std::set<std::uint64_t> local_ids;
    for (const MailMessage& message : account.inbox.messages) {
      local_ids.insert(message.id);
    }
    std::vector<MailMessage> merged;
    merged.reserve(imported.inbox.messages.size() +
                   account.inbox.messages.size());
    for (const MailMessage& message : imported.inbox.messages) {
      if (local_ids.count(message.id) == 0) merged.push_back(message);
    }
    for (MailMessage& message : account.inbox.messages) {
      merged.push_back(std::move(message));
    }
    account.inbox.messages = std::move(merged);
  }
  return util::Status::ok();
}

void ViewMailServerComponent::handle_request(const runtime::Request& request,
                                             runtime::ResponseCallback done) {
  // While a coherence batch is propagating, user-facing operations wait
  // (see ReplicaCoherence::flushing for the protocol rationale).
  if (replica_ && replica_->flushing() &&
      (request.op == ops::kSend || request.op == ops::kReceive)) {
    deferred_.emplace_back(request, std::move(done));
    return;
  }
  if (request.op == ops::kSend) {
    handle_send(request, std::move(done));
  } else if (request.op == ops::kReceive) {
    handle_receive(request, std::move(done));
  } else if (request.op == ops::kPush) {
    handle_push(request, std::move(done));
  } else if (request.op == ops::kSync) {
    handle_sync(request, std::move(done));
  } else if (request.op == ops::kRegisterReplica) {
    // A further-downstream view registering: record it locally, then relay
    // upstream so the home knows too.
    const auto* body = runtime::body_as<RegisterReplicaBody>(request);
    if (body != nullptr) {
      coherence::ViewSubscription subscription;
      subscription.object_keys = body->cached_users;
      subscription.wildcard = body->wildcard;
      directory_->register_replica(body->replica_instance, subscription);
    }
    forward(request, std::move(done));
  } else {
    // Account management and anything else is server-authoritative.
    forward(request, std::move(done));
  }
}

void ViewMailServerComponent::handle_send(const runtime::Request& request,
                                          runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<SendBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed send"));
    return;
  }
  if (body->message.sensitivity > trust_level_) {
    // Above our clearance: the message (and its key) may not live here.
    ++stats_.sends_forwarded;
    forward(request, std::move(done));
    return;
  }
  ++stats_.sends_local;
  apply_send_locally(body->message, /*queue_coherence=*/true);
  runtime::Response response;
  response.wire_bytes = 128;
  done(std::move(response));
}

void ViewMailServerComponent::handle_receive(const runtime::Request& request,
                                             runtime::ResponseCallback done) {
  const auto* body = runtime::body_as<ReceiveBody>(request);
  if (body == nullptr) {
    done(runtime::Response::failure("malformed receive"));
    return;
  }
  if (body->include_high_sensitivity && trust_level_ < kMaxSensitivity) {
    ++stats_.receives_forwarded;
    forward(request, std::move(done));
    return;
  }
  ++stats_.receives_local;
  auto result = std::make_shared<ReceiveResultBody>();
  double crypto_units = 0.0;
  auto it = cache_.find(body->user);
  if (it != cache_.end()) {
    const auto& inbox = it->second.inbox.messages;
    const std::size_t limit =
        std::min({body->max_messages, config_->receive_batch, inbox.size()});
    for (std::size_t i = inbox.size() - limit; i < inbox.size(); ++i) {
      MailMessage copy = inbox[i];
      crypto_units += reencrypt_for(copy, body->user);
      result->messages.push_back(std::move(copy));
    }
  }
  runtime::Response response;
  response.body = result;
  response.wire_bytes = receive_result_wire_bytes(result->messages);
  if (crypto_units > 0.0) {
    charge_cpu(crypto_units, [response = std::move(response),
                              done = std::move(done)]() mutable {
      done(std::move(response));
    });
  } else {
    done(std::move(response));
  }
}

void ViewMailServerComponent::handle_push(const runtime::Request& request,
                                          runtime::ResponseCallback done) {
  const auto* batch = runtime::body_as<coherence::UpdateBatch>(request);
  if (batch == nullptr) {
    done(runtime::Response::failure("malformed push"));
    return;
  }
  for (const coherence::Update& update : batch->updates) {
    const auto* send = dynamic_cast<const SendBody*>(update.payload.get());
    if (send == nullptr) continue;
    if (send->message.sensitivity > trust_level_) continue;  // never cache
    apply_send_locally(send->message, /*queue_coherence=*/false);
    ++stats_.pushes_applied;
  }
  runtime::Response response;
  response.wire_bytes = 64;
  done(std::move(response));
}

void ViewMailServerComponent::handle_sync(const runtime::Request& request,
                                          runtime::ResponseCallback done) {
  // A downstream replica's batch: apply what we may cache, propagate
  // everything upstream through our own coherence queue (hierarchical
  // write-back), and push to other downstream replicas.
  const auto* batch = runtime::body_as<coherence::UpdateBatch>(request);
  if (batch == nullptr) {
    done(runtime::Response::failure("malformed sync"));
    return;
  }
  ++stats_.syncs_relayed;
  for (const coherence::Update& update : batch->updates) {
    const auto* send = dynamic_cast<const SendBody*>(update.payload.get());
    if (send == nullptr) continue;
    if (send->message.sensitivity <= trust_level_) {
      apply_send_locally(send->message, /*queue_coherence=*/true);
    } else {
      // Not storable here; relay the raw update upstream.
      replica_->record_update(update.descriptor, update.payload);
    }
    directory_->on_update(update, batch->replica_id);
  }
  runtime::Response response;
  response.wire_bytes = 128;
  done(std::move(response));
}

void ViewMailServerComponent::forward(const runtime::Request& request,
                                      runtime::ResponseCallback done) {
  call("ServerInterface", request, std::move(done));
}

void ViewMailServerComponent::apply_send_locally(const MailMessage& message,
                                                 bool queue_coherence) {
  Account& account = cache_[message.to];
  if (account.user.empty()) account.user = message.to;
  account.inbox.messages.push_back(message);

  if (queue_coherence) {
    coherence::UpdateDescriptor descriptor;
    descriptor.object_key = message.to;
    descriptor.field = "inbox";
    descriptor.bytes = send_wire_bytes(message);
    auto payload = std::make_shared<SendBody>();
    payload->message = message;
    replica_->record_update(std::move(descriptor), std::move(payload));
  }
}

double ViewMailServerComponent::reencrypt_for(MailMessage& message,
                                              const std::string& recipient) {
  if (message.sensitivity == 0 || !message.sealed) return 0.0;
  if (message.key_owner == recipient) return 0.0;
  // Clearance check: this view only holds keys up to its trust level.
  if (message.sensitivity > trust_level_) return 0.0;
  auto sender_key = config_->keys->key(
      crypto::KeyRef{message.key_owner, message.sensitivity});
  auto recipient_key = config_->keys->key(
      crypto::KeyRef{recipient, message.sensitivity});
  if (!sender_key || !recipient_key) return 0.0;
  std::vector<std::uint8_t> plain;
  if (!crypto::unseal(*sender_key, *message.sealed, plain)) {
    PSF_WARN() << "ViewMailServer: MAC mismatch on message " << message.id;
    return 0.0;
  }
  const double cost = 2.0 * crypto::crypto_cpu_cost(plain.size());
  message.sealed = crypto::seal(*recipient_key, message.id ^ 0x5EA1ED, plain);
  message.key_owner = recipient;
  return cost;
}

std::size_t ViewMailServerComponent::cached_inbox_size(
    const std::string& user) const {
  auto it = cache_.find(user);
  return it == cache_.end() ? 0 : it->second.inbox.messages.size();
}

}  // namespace psf::mail
