#include "mail/mail_spec.hpp"

#include "spec/parser.hpp"
#include "util/assert.hpp"

namespace psf::mail {

const std::string& mail_spec_source() {
  static const std::string kSource = R"PSDL(
// Security-sensitive mail service (paper Fig. 2).
//
// Deviations from the figure, each required to make the published case
// study executable, are called out inline.
service SecureMail {
  property Confidentiality { type: boolean; }
  property TrustLevel { type: interval(1, 5); }
  property User { type: string; }

  interface ClientInterface { properties: Confidentiality, TrustLevel; }
  interface ServerInterface { properties: Confidentiality, TrustLevel; }
  // Fig. 2 lists only Confidentiality here; TrustLevel is added so the
  // transparent Encryptor/Decryptor pair can pass the server's trust level
  // through the tunnel (the figure's prose assumes exactly this).
  interface DecryptorInterface { properties: Confidentiality, TrustLevel; }

  // Property modification rules (paper Fig. 4): confidentiality survives
  // only environments that are themselves confidential.
  rule Confidentiality {
    (T, T) -> T;
    (F, any) -> F;
    (any, F) -> F;
  }

  component MailClient {
    implements ClientInterface { Confidentiality = F; TrustLevel = 4; }
    requires ServerInterface { Confidentiality = T; TrustLevel = 4; }
    // Fig. 2 uses `User = Alice` (an access-control list); we generalize to
    // the trust level so any sufficiently trusted node may host the full
    // client.
    conditions { node.TrustLevel >= 4; }
    behaviors {
      cpu_per_request: 20;
      bytes_per_request: 2300;
      bytes_per_response: 2800;
      code_size: 150 KB;
    }
  }

  // Object view: send/receive only, no address book; deployable on (and
  // demanding of) less trusted environments.
  object view ViewMailClient represents MailClient {
    implements ClientInterface { Confidentiality = F; TrustLevel = 2; }
    requires ServerInterface { Confidentiality = T; TrustLevel = 2; }
    conditions { node.TrustLevel >= 2; }
    behaviors {
      cpu_per_request: 15;
      bytes_per_request: 2300;
      bytes_per_response: 2800;
      code_size: 80 KB;
    }
  }

  component MailServer {
    static;  // the primary server is pre-placed at the service home (§4)
    implements ServerInterface { Confidentiality = T; TrustLevel = 5; }
    conditions { node.TrustLevel >= 5; }
    behaviors {
      capacity: 1000;
      cpu_per_request: 100;
      bytes_per_request: 2300;
      bytes_per_response: 3200;
      code_size: 500 KB;
    }
  }

  // Data view: caches a subset of accounts; its trust level (and therefore
  // which sensitivity levels it may store) factors from the hosting node.
  data view ViewMailServer represents MailServer {
    factors { TrustLevel = node.TrustLevel; }
    implements ServerInterface { Confidentiality = T; TrustLevel = factor.TrustLevel; }
    requires ServerInterface { Confidentiality = T; TrustLevel = factor.TrustLevel; }
    // Fig. 2's (1,3)-style window: views live on partially trusted nodes;
    // the fully trusted home hosts the real server instead.
    conditions { node.TrustLevel in (2, 4); }
    behaviors {
      rrf: 0.2;
      capacity: 500;
      cpu_per_request: 60;
      bytes_per_request: 2300;
      bytes_per_response: 3200;
      code_size: 300 KB;
    }
  }

  component Encryptor {
    transparent;
    implements ServerInterface { Confidentiality = T; }
    requires DecryptorInterface { }
    behaviors {
      cpu_per_request: 12;
      bytes_per_request: 2348;
      bytes_per_response: 3248;
      code_size: 60 KB;
    }
  }

  component Decryptor {
    transparent;
    implements DecryptorInterface { }
    requires ServerInterface { Confidentiality = T; }
    behaviors {
      cpu_per_request: 12;
      bytes_per_request: 2300;
      bytes_per_response: 3200;
      code_size: 60 KB;
    }
  }
}
)PSDL";
  return kSource;
}

spec::ServiceSpec mail_service_spec() {
  auto parsed = spec::parse_spec(mail_spec_source());
  PSF_CHECK_MSG(parsed.has_value(), parsed.status().to_string());
  return std::move(parsed).value();
}

std::shared_ptr<planner::CredentialMapTranslator> mail_translator() {
  auto translator = std::make_shared<planner::CredentialMapTranslator>();
  translator->map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
                        spec::PropertyValue::integer(1)});
  translator->map_node({"Confidentiality", "secure",
                        spec::PropertyType::kBoolean,
                        spec::PropertyValue::boolean(false)});
  translator->map_node(
      {"User", "user", spec::PropertyType::kString, spec::PropertyValue()});
  translator->map_link({"Confidentiality", "secure",
                        spec::PropertyType::kBoolean,
                        spec::PropertyValue::boolean(false)});
  return translator;
}

}  // namespace psf::mail
