// detlint:ordered-output — merged traces must be bit-identical across worker counts.
// Region-parallel conservative discrete-event engine.
//
// The serial Simulator tops out at one core; this engine partitions the
// event population into regions (see region.hpp) and runs them on worker
// threads under conservative lookahead synchronization:
//
//   - every event belongs to a region and may freely schedule further
//     events in its own region at any time >= now;
//   - an event may post into ANOTHER region only at time >= now + lookahead
//     (the minimum cross-region link latency — in the network model a
//     message physically cannot arrive sooner);
//   - therefore all events with timestamp < min_next_event + lookahead are
//     causally independent across regions and execute in parallel. Workers
//     run that window, exchange cross-region events through lock-free
//     mailboxes, synchronize on a barrier, and advance the horizon.
//
// Determinism: events carry (origin region, origin sequence) assigned at
// schedule time by the deterministic per-region counters, and each region
// executes its queue in (time, origin, seq) order. Region state is
// region-private by contract, so the merged trace — sorted on
// (time, region, origin, seq) — is bit-identical for any worker count,
// including the dedicated single-threaded path used as the speedup
// baseline.
//
// Allocation: event callbacks are util::SmallFn (inline captures) and
// mailbox nodes come from per-region slab pools with freelist recycling —
// steady state performs no allocator calls on the event path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "util/small_fn.hpp"

namespace psf::sim {

using EventFn = util::SmallFn;
// Also declared (identically) by region.hpp; the engine itself is
// topology-agnostic and must not depend on net::Network.
using RegionId = std::uint32_t;

struct TraceEntry {
  std::int64_t when_ns = 0;
  RegionId region = 0;  // executing region
  RegionId origin = 0;  // scheduling region
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;

  bool operator==(const TraceEntry&) const = default;
};

struct ParallelStats {
  std::uint64_t executed = 0;
  std::uint64_t cross_region_posts = 0;
  std::uint64_t windows = 0;          // barrier cycles across all runs
  std::uint64_t mailbox_blocks = 0;   // allocator calls for mailbox nodes
  std::uint64_t mailbox_nodes = 0;    // nodes handed out
  std::uint64_t mailbox_reuses = 0;   // nodes served from a freelist
};

class ParallelSimulator {
 public:
  // lookahead must be positive to run with more than one worker; a
  // partition with no cut links may pass Duration::from_nanos(INT64_MAX).
  ParallelSimulator(std::size_t num_regions, Duration lookahead);
  ~ParallelSimulator();

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  std::size_t num_regions() const { return regions_.size(); }
  Duration lookahead() const { return lookahead_; }

  // Setup-time scheduling into an arbitrary region. Not thread-safe; call
  // before run() or between runs.
  void seed_event(RegionId region, Time when, EventFn fn,
                  std::uint64_t tag = 0);

  // ---- callable only from inside a running event --------------------------
  Time now() const;
  RegionId current_region() const;
  // Schedule in the current region at now() + delay.
  void schedule_local(Duration delay, EventFn fn, std::uint64_t tag = 0);
  // Schedule in region `dst` at absolute time `when`. Same-region posts are
  // local; cross-region posts require when >= now() + lookahead.
  void post(RegionId dst, Time when, EventFn fn, std::uint64_t tag = 0);

  // ---- execution -----------------------------------------------------------
  // Runs events with timestamp <= deadline using `workers` threads (clamped
  // to [1, num_regions]; 1 selects the dedicated serial path). Returns the
  // number of events executed by this call. May be called repeatedly —
  // state (queues, clocks, mailboxes) persists across calls, so a driver
  // can pause at a quiescent point, mutate shared read-only inputs (e.g.
  // fail network links), and resume.
  std::size_t run_until(Time deadline, std::size_t workers);
  std::size_t run(std::size_t workers) { return run_until(Time::max(), workers); }

  bool empty() const;
  // Latest clock over all regions (max executed-event timestamp).
  Time end_time() const;

  // Execution telemetry aggregated over all regions and runs.
  ParallelStats stats() const;

  // Trace recording for the parallel/serial equivalence suite. Entries are
  // appended per region at execution time; merged_trace() returns them
  // sorted on (time, region, origin, seq).
  void enable_trace(bool on) { trace_ = on; }
  std::vector<TraceEntry> merged_trace() const;

 private:
  struct Region;

  Region& region_at(RegionId r) const;
  void exec_region(Region& region, std::int64_t horizon_ns);
  void drain_inbox(Region& region);
  std::size_t run_serial(Time deadline);
  std::size_t run_parallel(Time deadline, std::size_t workers);
  void reduce_window();

  std::vector<std::unique_ptr<Region>> regions_;
  Duration lookahead_;
  bool trace_ = false;

  // Run-scoped coordination (parallel path). Written by the barrier
  // completion step, read by workers after the barrier — the barrier is the
  // synchronization point.
  std::vector<std::int64_t> worker_min_;
  std::int64_t horizon_ns_ = 0;
  std::int64_t deadline_ns_ = 0;
  bool done_ = false;
  int barrier_phase_ = 0;
  std::uint64_t windows_ = 0;

  // Serial-path merge heap; non-null only while run_serial is active (post()
  // uses it to re-key destination regions).
  struct SerialHeap;
  SerialHeap* serial_heap_ = nullptr;

  static thread_local ParallelSimulator* tls_sim_;
  static thread_local Region* tls_region_;
};

}  // namespace psf::sim
