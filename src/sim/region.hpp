// detlint:ordered-output — per-region event order feeds the deterministic merge.
// Topology partitioning for the region-parallel simulation engine.
//
// partition_network is a thin wrapper over the shared graph-partitioning
// utility (net::partition_graph in net/partition.hpp — deterministic
// streaming-greedy BFS assignment with capacity bound plus one
// boundary-refinement sweep; the hierarchical planner's ClusterIndex builds
// on the same primitive). The sim-specific part is the conservative
// lookahead: the minimum latency over cut links. Any event executing at
// time t in one region can influence another region no earlier than
// t + lookahead, which is what lets region workers run a whole window of
// events without coordinating (see parallel.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"

namespace psf::sim {

using RegionId = std::uint32_t;

struct RegionPartition {
  std::vector<RegionId> region_of_node;  // indexed by NodeId::value
  std::size_t num_regions = 1;
  // Minimum latency over links whose endpoints fall in different regions.
  // Duration::from_nanos(INT64_MAX) when no link crosses regions (fully
  // independent partitions). Zero only if a cut link has zero latency — the
  // parallel engine rejects that configuration.
  Duration lookahead = Duration::zero();
  std::size_t cut_links = 0;
  std::vector<std::size_t> region_nodes;  // node count per region

  RegionId region_of(net::NodeId n) const {
    return region_of_node[n.value];
  }
};

// Deterministic: same network (nodes, links, latencies) => same partition.
// num_regions is clamped to [1, node_count].
RegionPartition partition_network(const net::Network& network,
                                  std::size_t num_regions);

}  // namespace psf::sim
