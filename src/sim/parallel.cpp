// detlint:ordered-output — merged traces must be bit-identical across worker counts.
#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <limits>
#include <queue>
#include <thread>

#include "util/arena.hpp"
#include "util/assert.hpp"

namespace psf::sim {

namespace {
constexpr std::int64_t kInfNs = std::numeric_limits<std::int64_t>::max();
}  // namespace

// A cross-region event in flight. Created from the SENDING region's pool,
// pushed onto the destination's lock-free inbox, and released into the
// DESTINATION region's pool at drain time — nodes migrate freely between
// the pools, which the engine owns together (see util/arena.hpp).
struct MsgNode {
  std::int64_t when_ns;
  RegionId origin;
  std::uint64_t seq;
  std::uint64_t tag;
  EventFn fn;
  MsgNode* next = nullptr;

  MsgNode(std::int64_t w, RegionId o, std::uint64_t s, std::uint64_t t,
          EventFn f)
      : when_ns(w), origin(o), seq(s), tag(t), fn(std::move(f)) {}
};

namespace {

struct RegionEvent {
  std::int64_t when_ns;
  RegionId origin;
  std::uint64_t seq;
  std::uint64_t tag;
  EventFn fn;
};

// Min-heap on the deterministic ordering key (time, origin region, origin
// sequence). The pair (origin, seq) is unique per event and assigned at
// schedule time, so this order is independent of mailbox arrival order.
struct LaterEvent {
  bool operator()(const RegionEvent& a, const RegionEvent& b) const {
    if (a.when_ns != b.when_ns) return a.when_ns > b.when_ns;
    if (a.origin != b.origin) return a.origin > b.origin;
    return a.seq > b.seq;
  }
};

}  // namespace

struct ParallelSimulator::Region {
  explicit Region(RegionId id_in) : id(id_in) {}

  const RegionId id;
  std::int64_t now_ns = 0;
  std::uint64_t next_seq = 0;  // deterministic per-region sequence counter
  std::uint64_t executed = 0;
  std::uint64_t cross_posts = 0;
  std::priority_queue<RegionEvent, std::vector<RegionEvent>, LaterEvent> queue;
  // Push-only Treiber stack: producers CAS-push, the owning worker drains
  // with exchange(nullptr) at the window barrier. There is no concurrent
  // pop, so the classic ABA hazard does not apply.
  std::atomic<MsgNode*> inbox{nullptr};
  util::SlabPool<MsgNode> node_pool;
  std::vector<TraceEntry> trace;
};

// Serial-path merge heap: keys point at region queue tops; stale keys (the
// region's top changed underneath) are skipped on pop. Keeping keys in the
// same (time, region, origin, seq) order the trace merge uses makes the
// serial execution order the canonical linearization.
struct ParallelSimulator::SerialHeap {
  struct Key {
    std::int64_t when_ns;
    RegionId region;
    RegionId origin;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.when_ns != b.when_ns) return a.when_ns > b.when_ns;
      if (a.region != b.region) return a.region > b.region;
      if (a.origin != b.origin) return a.origin > b.origin;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Key, std::vector<Key>, Later> heap;

  void push_top(const Region& r) {
    if (r.queue.empty()) return;
    const RegionEvent& top = r.queue.top();
    heap.push(Key{top.when_ns, r.id, top.origin, top.seq});
  }
};

thread_local ParallelSimulator* ParallelSimulator::tls_sim_ = nullptr;
thread_local ParallelSimulator::Region* ParallelSimulator::tls_region_ =
    nullptr;

ParallelSimulator::ParallelSimulator(std::size_t num_regions,
                                     Duration lookahead)
    : lookahead_(lookahead) {
  PSF_CHECK_MSG(num_regions > 0, "need at least one region");
  PSF_CHECK_MSG(lookahead.nanos() >= 0, "negative lookahead");
  regions_.reserve(num_regions);
  for (std::size_t r = 0; r < num_regions; ++r) {
    regions_.push_back(std::make_unique<Region>(static_cast<RegionId>(r)));
  }
}

ParallelSimulator::~ParallelSimulator() {
  // Mailboxes may hold undelivered nodes if a run stopped at a deadline;
  // return them so their SmallFn targets are destroyed.
  for (auto& region : regions_) drain_inbox(*region);
}

ParallelSimulator::Region& ParallelSimulator::region_at(RegionId r) const {
  PSF_CHECK_MSG(r < regions_.size(), "region id out of range");
  return *regions_[r];
}

void ParallelSimulator::seed_event(RegionId region, Time when, EventFn fn,
                                   std::uint64_t tag) {
  Region& dst = region_at(region);
  PSF_CHECK_MSG(when.nanos() >= dst.now_ns, "seeding into the past");
  dst.queue.push(RegionEvent{when.nanos(), dst.id, dst.next_seq++, tag,
                             std::move(fn)});
}

Time ParallelSimulator::now() const {
  PSF_CHECK_MSG(tls_region_ != nullptr, "now() outside an event");
  return Time::from_nanos(tls_region_->now_ns);
}

RegionId ParallelSimulator::current_region() const {
  PSF_CHECK_MSG(tls_region_ != nullptr, "current_region() outside an event");
  return tls_region_->id;
}

void ParallelSimulator::schedule_local(Duration delay, EventFn fn,
                                       std::uint64_t tag) {
  PSF_CHECK_MSG(tls_region_ != nullptr && tls_sim_ == this,
                "schedule_local() outside an event");
  PSF_CHECK_MSG(delay.nanos() >= 0, "negative delay");
  Region& src = *tls_region_;
  src.queue.push(RegionEvent{src.now_ns + delay.nanos(), src.id,
                             src.next_seq++, tag, std::move(fn)});
}

void ParallelSimulator::post(RegionId dst_id, Time when, EventFn fn,
                             std::uint64_t tag) {
  PSF_CHECK_MSG(tls_region_ != nullptr && tls_sim_ == this,
                "post() outside an event");
  Region& src = *tls_region_;
  Region& dst = region_at(dst_id);
  if (&dst == &src) {
    PSF_CHECK_MSG(when.nanos() >= src.now_ns, "posting into the past");
    src.queue.push(RegionEvent{when.nanos(), src.id, src.next_seq++, tag,
                               std::move(fn)});
    return;
  }

  // The conservative contract: a cross-region effect cannot land inside the
  // window its cause executes in.
  PSF_CHECK_MSG(
      lookahead_.nanos() >= kInfNs - src.now_ns ||
          when.nanos() >= src.now_ns + lookahead_.nanos(),
      "cross-region post violates lookahead");
  ++src.cross_posts;

  const std::uint64_t seq = src.next_seq++;
  if (serial_heap_ != nullptr) {
    // Serial mode: no other thread is running, deliver directly.
    dst.queue.push(
        RegionEvent{when.nanos(), src.id, seq, tag, std::move(fn)});
    serial_heap_->push_top(dst);
    return;
  }

  MsgNode* node =
      src.node_pool.create(when.nanos(), src.id, seq, tag, std::move(fn));
  MsgNode* head = dst.inbox.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!dst.inbox.compare_exchange_weak(
      head, node, std::memory_order_release, std::memory_order_relaxed));
}

void ParallelSimulator::drain_inbox(Region& region) {
  MsgNode* node = region.inbox.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    region.queue.push(RegionEvent{node->when_ns, node->origin, node->seq,
                                  node->tag, std::move(node->fn)});
    MsgNode* next = node->next;
    // Recycle into the DRAINING region's pool; only this region's worker
    // touches its freelist during the drain phase.
    region.node_pool.destroy(node);
    node = next;
  }
}

void ParallelSimulator::exec_region(Region& region, std::int64_t horizon_ns) {
  tls_region_ = &region;
  auto& queue = region.queue;
  while (!queue.empty() && queue.top().when_ns < horizon_ns) {
    RegionEvent ev = std::move(const_cast<RegionEvent&>(queue.top()));
    queue.pop();
    region.now_ns = ev.when_ns;
    if (trace_) {
      region.trace.push_back(
          TraceEntry{ev.when_ns, region.id, ev.origin, ev.seq, ev.tag});
    }
    ev.fn();
    ++region.executed;
  }
  tls_region_ = nullptr;
}

std::size_t ParallelSimulator::run_serial(Time deadline) {
  SerialHeap heap;
  serial_heap_ = &heap;
  tls_sim_ = this;
  for (auto& region : regions_) {
    drain_inbox(*region);  // leftovers from a deadline-stopped parallel run
    heap.push_top(*region);
  }

  std::size_t executed = 0;
  while (!heap.heap.empty()) {
    const SerialHeap::Key key = heap.heap.top();
    heap.heap.pop();
    Region& region = *regions_[key.region];
    if (region.queue.empty()) continue;
    const RegionEvent& top = region.queue.top();
    if (top.when_ns != key.when_ns || top.origin != key.origin ||
        top.seq != key.seq) {
      continue;  // stale key: the region's top changed since it was pushed
    }
    if (top.when_ns > deadline.nanos()) break;

    RegionEvent ev = std::move(const_cast<RegionEvent&>(region.queue.top()));
    region.queue.pop();
    tls_region_ = &region;
    region.now_ns = ev.when_ns;
    if (trace_) {
      region.trace.push_back(
          TraceEntry{ev.when_ns, region.id, ev.origin, ev.seq, ev.tag});
    }
    ev.fn();
    tls_region_ = nullptr;
    ++region.executed;
    ++executed;
    heap.push_top(region);  // re-key this region (post() re-keyed the others)
  }

  serial_heap_ = nullptr;
  tls_sim_ = nullptr;
  return executed;
}

void ParallelSimulator::reduce_window() {
  std::int64_t global_min = kInfNs;
  for (const std::int64_t m : worker_min_) {
    global_min = std::min(global_min, m);
  }
  if (global_min == kInfNs || global_min > deadline_ns_) {
    done_ = true;
    return;
  }
  const std::int64_t la = lookahead_.nanos();
  std::int64_t horizon =
      (la >= kInfNs - global_min) ? kInfNs : global_min + la;
  // Events at exactly the deadline must still run; beyond it they must not.
  if (deadline_ns_ < kInfNs && horizon > deadline_ns_) {
    horizon = deadline_ns_ + 1;
  }
  horizon_ns_ = horizon;
  ++windows_;
}

std::size_t ParallelSimulator::run_parallel(Time deadline,
                                            std::size_t workers) {
  PSF_CHECK_MSG(lookahead_.nanos() > 0,
                "parallel execution requires positive lookahead");
  deadline_ns_ = deadline.nanos();
  horizon_ns_ = std::numeric_limits<std::int64_t>::min();  // first exec no-ops
  done_ = false;
  barrier_phase_ = 0;
  worker_min_.assign(workers, kInfNs);

  std::uint64_t executed_before = 0;
  for (const auto& region : regions_) executed_before += region->executed;

  // Two barrier cycles per window. Cycle A ends the execute phase; cycle B
  // ends the drain phase and its completion step reduces the per-worker
  // minima into the next horizon (or terminates the run).
  auto completion = [this]() noexcept {
    if (barrier_phase_ == 0) {
      barrier_phase_ = 1;
      return;
    }
    barrier_phase_ = 0;
    reduce_window();
  };
  std::barrier bar(static_cast<std::ptrdiff_t>(workers), completion);

  auto worker = [this, workers, &bar](std::size_t w) {
    tls_sim_ = this;
    const std::size_t n = regions_.size();
    while (true) {
      for (std::size_t r = w; r < n; r += workers) {
        exec_region(*regions_[r], horizon_ns_);
      }
      bar.arrive_and_wait();  // cycle A: everyone finished executing

      std::int64_t my_min = kInfNs;
      for (std::size_t r = w; r < n; r += workers) {
        Region& region = *regions_[r];
        drain_inbox(region);
        if (!region.queue.empty()) {
          my_min = std::min(my_min, region.queue.top().when_ns);
        }
      }
      worker_min_[w] = my_min;
      bar.arrive_and_wait();  // cycle B: completion computed the next window
      if (done_) break;
    }
    tls_sim_ = nullptr;
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& t : threads) t.join();

  std::uint64_t executed_after = 0;
  for (const auto& region : regions_) executed_after += region->executed;
  return static_cast<std::size_t>(executed_after - executed_before);
}

std::size_t ParallelSimulator::run_until(Time deadline, std::size_t workers) {
  workers = std::clamp<std::size_t>(workers, 1, regions_.size());
  if (workers == 1) return run_serial(deadline);
  return run_parallel(deadline, workers);
}

bool ParallelSimulator::empty() const {
  for (const auto& region : regions_) {
    if (!region->queue.empty()) return false;
    if (region->inbox.load(std::memory_order_acquire) != nullptr) return false;
  }
  return true;
}

Time ParallelSimulator::end_time() const {
  std::int64_t latest = 0;
  for (const auto& region : regions_) {
    latest = std::max(latest, region->now_ns);
  }
  return Time::from_nanos(latest);
}

ParallelStats ParallelSimulator::stats() const {
  ParallelStats s;
  s.windows = windows_;
  for (const auto& region : regions_) {
    s.executed += region->executed;
    s.cross_region_posts += region->cross_posts;
    const auto& pool = region->node_pool.stats();
    s.mailbox_blocks += pool.blocks;
    s.mailbox_nodes += pool.created;
    s.mailbox_reuses += pool.recycled;
  }
  return s;
}

std::vector<TraceEntry> ParallelSimulator::merged_trace() const {
  std::vector<TraceEntry> merged;
  std::size_t total = 0;
  for (const auto& region : regions_) total += region->trace.size();
  merged.reserve(total);
  for (const auto& region : regions_) {
    merged.insert(merged.end(), region->trace.begin(), region->trace.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
              if (a.region != b.region) return a.region < b.region;
              if (a.origin != b.origin) return a.origin < b.origin;
              return a.seq < b.seq;
            });
  return merged;
}

}  // namespace psf::sim
