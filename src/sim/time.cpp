#include "sim/time.hpp"

#include "util/strings.hpp"

namespace psf::sim {

std::string Time::to_string() const {
  return util::format_duration_us(micros());
}

std::string Duration::to_string() const {
  return util::format_duration_us(micros());
}

}  // namespace psf::sim
