// Simulated time.
//
// Time is an integer count of nanoseconds since simulation start. Integer
// time keeps event ordering exact (no floating-point ties) and a 64-bit
// nanosecond clock covers ~292 years of simulated time.
#pragma once

#include <cstdint>
#include <string>

namespace psf::sim {

class Duration;

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time from_nanos(std::int64_t ns) { return Time(ns); }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(INT64_MAX); }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double micros() const { return static_cast<double>(nanos_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  constexpr double seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr bool operator==(const Time&) const = default;
  constexpr auto operator<=>(const Time&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : nanos_(ns) {}
  std::int64_t nanos_ = 0;
};

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration from_nanos(std::int64_t ns) {
    return Duration(ns);
  }
  static constexpr Duration from_micros(double us) {
    return Duration(static_cast<std::int64_t>(us * 1e3));
  }
  static constexpr Duration from_millis(double ms) {
    return Duration(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double micros() const { return static_cast<double>(nanos_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  constexpr double seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr bool operator==(const Duration&) const = default;
  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const {
    return Duration(nanos_ + other.nanos_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(nanos_ - other.nanos_);
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(nanos_) * k));
  }

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : nanos_(ns) {}
  std::int64_t nanos_ = 0;
};

constexpr Time operator+(Time t, Duration d) {
  return Time::from_nanos(t.nanos() + d.nanos());
}
constexpr Duration operator-(Time a, Time b) {
  return Duration::from_nanos(a.nanos() - b.nanos());
}

}  // namespace psf::sim
