// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's emulated testbed (Pentium
// III nodes behind a Click software router with traffic shaping). All
// latency / bandwidth / CPU costs in the runtime are charged by scheduling
// events on this engine.
//
// Determinism: events at the same timestamp fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a given seed
// always produces the same trace.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace psf::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedule fn to run at now() + delay. Negative delays are a bug.
  EventId schedule(Duration delay, EventFn fn) {
    PSF_CHECK_MSG(delay.nanos() >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Schedule fn at an absolute time >= now().
  EventId schedule_at(Time when, EventFn fn) {
    PSF_CHECK_MSG(when >= now_, "scheduling into the past");
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(fn), false});
    ++pending_;
    return id;
  }

  // Cancel a pending event. Returns false if it already ran / was cancelled,
  // or if the id was never issued by this simulator (a garbage id must not
  // grow the tombstone vector).
  // Cancellation is lazy (tombstone) — O(1), the queue skips dead events.
  bool cancel(EventId id) {
    if (id >= next_id_) return false;
    if (cancelled_.size() <= id) cancelled_.resize(id + 1, false);
    if (cancelled_[id]) return false;
    cancelled_[id] = true;
    return true;
  }

  // Run until the queue is empty. Returns number of events executed.
  std::size_t run() { return run_until(Time::max()); }

  // Run events with timestamp <= deadline; clock ends at the later of the
  // last event time and (if any events remained) the deadline.
  std::size_t run_until(Time deadline) {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.when > deadline) break;
      Event ev = std::move(const_cast<Event&>(top));
      queue_.pop();
      --pending_;
      if (ev.id < cancelled_.size() && cancelled_[ev.id]) continue;
      now_ = ev.when;
      ev.fn();
      ++executed;
    }
    if (!queue_.empty() && deadline != Time::max() && now_ < deadline) {
      now_ = deadline;
    }
    return executed;
  }

  // Execute exactly one event (if any). Returns true if one ran.
  bool step() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      --pending_;
      if (ev.id < cancelled_.size() && cancelled_[ev.id]) continue;
      now_ = ev.when;
      ev.fn();
      return true;
    }
    return false;
  }

  bool empty() const { return pending_ == 0; }
  std::size_t pending_events() const { return pending_; }

 private:
  struct Event {
    Time when;
    EventId id;
    EventFn fn;
    bool tombstone;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Time now_ = Time::zero();
  EventId next_id_ = 0;
  std::size_t pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<bool> cancelled_;
};

// Repeating timer helper built on Simulator; used by time-driven coherence
// and the network monitor. RAII: destruction cancels the pending tick.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, EventFn on_tick)
      : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
    PSF_CHECK(period_.nanos() > 0);
  }

  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
  }

  bool running() const { return running_; }

 private:
  void arm() {
    pending_ = sim_.schedule(period_, [this] {
      if (!running_) return;
      on_tick_();
      if (running_) arm();
    });
  }

  Simulator& sim_;
  Duration period_;
  EventFn on_tick_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace psf::sim
