// detlint:ordered-output — event order here IS the trace.
// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's emulated testbed (Pentium
// III nodes behind a Click software router with traffic shaping). All
// latency / bandwidth / CPU costs in the runtime are charged by scheduling
// events on this engine.
//
// Determinism: events at the same timestamp fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a given seed
// always produces the same trace.
//
// Allocation: event callbacks are util::SmallFn — captures up to 48 bytes
// live inline in the queue's own storage, so the steady-state hot path
// performs no per-event heap allocation (std::function allocated for
// anything over 16 bytes). Cancellation state is a watermarked flag window:
// ids below the minimum outstanding id are dropped from the front, so
// memory tracks the number of in-flight events, not the total ever
// scheduled — a week-long megascale run stays flat.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/small_fn.hpp"

namespace psf::sim {

using EventFn = util::SmallFn;
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedule fn to run at now() + delay. Negative delays are a bug.
  EventId schedule(Duration delay, EventFn fn) {
    PSF_CHECK_MSG(delay.nanos() >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Schedule fn at an absolute time >= now().
  EventId schedule_at(Time when, EventFn fn) {
    PSF_CHECK_MSG(when >= now_, "scheduling into the past");
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(fn)});
    flags_.push_back(0);
    ++pending_;
    return id;
  }

  // Cancel a pending event. Returns false if it already ran / was cancelled,
  // or if the id was never issued by this simulator (a garbage id must not
  // grow the flag window). Cancellation is lazy — O(1), the queue skips
  // dead events — and counts the event out of pending_events() immediately.
  bool cancel(EventId id) {
    if (id < base_ || id >= next_id_) return false;
    std::uint8_t& f = flags_[id - base_];
    if (f != 0) return false;  // already cancelled or already ran
    f = kCancelled;
    --pending_;
    return true;
  }

  // Run until the queue is empty. Returns number of events executed.
  std::size_t run() { return run_until(Time::max()); }

  // Run events with timestamp <= deadline; clock ends at the later of the
  // last event time and (if any events remained) the deadline.
  std::size_t run_until(Time deadline) {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      if (queue_.top().when > deadline) break;
      Event ev = pop_top();
      if (retire(ev.id)) continue;  // cancelled: pending_ already adjusted
      --pending_;
      now_ = ev.when;
      ev.fn();
      ++executed;
    }
    if (!queue_.empty() && deadline != Time::max() && now_ < deadline) {
      now_ = deadline;
    }
    return executed;
  }

  // Execute exactly one event (if any). Returns true if one ran.
  bool step() {
    while (!queue_.empty()) {
      Event ev = pop_top();
      if (retire(ev.id)) continue;  // cancelled: pending_ already adjusted
      --pending_;
      now_ = ev.when;
      ev.fn();
      return true;
    }
    return false;
  }

  // Live (not-yet-run, not-cancelled) events.
  bool empty() const { return pending_ == 0; }
  std::size_t pending_events() const { return pending_; }

  // Width of the cancellation flag window (ids between the retirement
  // watermark and the newest issued id). Tracks outstanding events, not
  // total events scheduled — exposed so tests can pin the memory bound.
  std::size_t tombstone_window() const { return flags_.size(); }

 private:
  struct Event {
    Time when;
    EventId id;
    EventFn fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  static constexpr std::uint8_t kCancelled = 1;
  static constexpr std::uint8_t kRetired = 2;

  // Extract the top event. std::priority_queue only exposes a const top();
  // moving out right before pop() is safe (the element is discarded) and
  // shared here by run_until()/step() instead of being inlined in both.
  Event pop_top() {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    return ev;
  }

  // Marks `id` as done (executed or skipped), advances the watermark past
  // fully-retired ids, and reports whether the event had been cancelled.
  bool retire(EventId id) {
    std::uint8_t& f = flags_[id - base_];
    const bool cancelled = (f & kCancelled) != 0;
    f |= kRetired;
    while (!flags_.empty() && (flags_.front() & kRetired) != 0) {
      flags_.pop_front();
      ++base_;
    }
    return cancelled;
  }

  Time now_ = Time::zero();
  EventId next_id_ = 0;
  EventId base_ = 0;        // ids below this are retired
  std::size_t pending_ = 0;  // live events (scheduled - run - cancelled)
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::deque<std::uint8_t> flags_;  // per-id state, indexed by id - base_
};

// Repeating timer helper built on Simulator; used by time-driven coherence
// and the network monitor. RAII: destruction cancels the pending tick.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, EventFn on_tick)
      : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
    PSF_CHECK(period_.nanos() > 0);
  }

  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
  }

  bool running() const { return running_; }

 private:
  void arm() {
    pending_ = sim_.schedule(period_, [this] {
      if (!running_) return;
      on_tick_();
      if (running_) arm();
    });
  }

  Simulator& sim_;
  Duration period_;
  EventFn on_tick_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace psf::sim
