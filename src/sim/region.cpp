#include "sim/region.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace psf::sim {

namespace {

// BFS order from node 0, appending further components from the lowest
// unvisited id — a deterministic stream that keeps neighbors close together
// so the greedy pass sees placed neighbors early.
std::vector<net::NodeId> stream_order(const net::Network& network) {
  const std::size_t n = network.node_count();
  std::vector<net::NodeId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  for (std::uint32_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::deque<net::NodeId> frontier{net::NodeId{start}};
    seen[start] = true;
    while (!frontier.empty()) {
      const net::NodeId u = frontier.front();
      frontier.pop_front();
      order.push_back(u);
      for (net::LinkId lid : network.links_of(u)) {
        const net::NodeId v = network.link(lid).other(u);
        if (!seen[v.value]) {
          seen[v.value] = true;
          frontier.push_back(v);
        }
      }
    }
  }
  return order;
}

}  // namespace

RegionPartition partition_network(const net::Network& network,
                                  std::size_t num_regions) {
  const std::size_t n = network.node_count();
  PSF_CHECK_MSG(n > 0, "cannot partition an empty network");
  num_regions = std::clamp<std::size_t>(num_regions, 1, n);

  RegionPartition part;
  part.num_regions = num_regions;
  part.region_of_node.assign(n, 0);
  part.region_nodes.assign(num_regions, 0);

  const std::size_t capacity = (n + num_regions - 1) / num_regions;
  constexpr RegionId kUnassigned = std::numeric_limits<RegionId>::max();
  std::vector<RegionId> assign(n, kUnassigned);

  // Streaming greedy assignment.
  std::vector<std::size_t> score(num_regions);
  for (const net::NodeId u : stream_order(network)) {
    std::fill(score.begin(), score.end(), 0);
    for (net::LinkId lid : network.links_of(u)) {
      const net::NodeId v = network.link(lid).other(u);
      if (assign[v.value] != kUnassigned) ++score[assign[v.value]];
    }
    RegionId best = kUnassigned;
    for (RegionId r = 0; r < num_regions; ++r) {
      if (part.region_nodes[r] >= capacity) continue;
      if (best == kUnassigned || score[r] > score[best] ||
          (score[r] == score[best] &&
           part.region_nodes[r] < part.region_nodes[best])) {
        best = r;
      }
    }
    PSF_CHECK(best != kUnassigned);  // capacities sum to >= n
    assign[u.value] = best;
    ++part.region_nodes[best];
  }

  // One refinement sweep: move a boundary node to the neighboring region
  // where it has strictly more neighbors, when balance permits. Nodes are
  // visited in id order, so the sweep is deterministic.
  for (std::uint32_t u = 0; u < n; ++u) {
    const RegionId cur = assign[u];
    if (part.region_nodes[cur] <= 1) continue;
    std::fill(score.begin(), score.end(), 0);
    for (net::LinkId lid : network.links_of(net::NodeId{u})) {
      const net::NodeId v = network.link(lid).other(net::NodeId{u});
      ++score[assign[v.value]];
    }
    RegionId target = cur;
    for (RegionId r = 0; r < num_regions; ++r) {
      if (r == cur || part.region_nodes[r] >= capacity) continue;
      if (score[r] > score[target]) target = r;
    }
    if (target != cur) {
      assign[u] = target;
      --part.region_nodes[cur];
      ++part.region_nodes[target];
    }
  }

  part.region_of_node = std::move(assign);

  // Cut statistics and conservative lookahead.
  std::int64_t min_cut_ns = std::numeric_limits<std::int64_t>::max();
  for (net::LinkId lid : network.all_links()) {
    const net::Link& l = network.link(lid);
    if (part.region_of_node[l.a.value] == part.region_of_node[l.b.value]) {
      continue;
    }
    ++part.cut_links;
    min_cut_ns = std::min(min_cut_ns, l.latency.nanos());
  }
  part.lookahead = Duration::from_nanos(min_cut_ns);
  return part;
}

}  // namespace psf::sim
