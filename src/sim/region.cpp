// detlint:ordered-output — per-region event order feeds the deterministic merge.
#include "sim/region.hpp"

#include "net/partition.hpp"

namespace psf::sim {

RegionPartition partition_network(const net::Network& network,
                                  std::size_t num_regions) {
  net::GraphPartition part = net::partition_graph(network, num_regions);

  RegionPartition region;
  region.region_of_node = std::move(part.part_of_node);
  region.num_regions = part.num_parts;
  region.region_nodes = std::move(part.part_sizes);
  region.cut_links = part.cut_links;
  region.lookahead = Duration::from_nanos(part.min_cut_latency_ns);
  return region;
}

}  // namespace psf::sim
