#include "core/scenarios.hpp"

#include <memory>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/server.hpp"
#include "mail/view_server.hpp"
#include "util/logging.hpp"

namespace psf::core {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kDF: return "DF";
    case Scenario::kDS0: return "DS0";
    case Scenario::kDS500: return "DS500";
    case Scenario::kDS1000: return "DS1000";
    case Scenario::kSF: return "SF";
    case Scenario::kSS0: return "SS0";
    case Scenario::kSS500: return "SS500";
    case Scenario::kSS1000: return "SS1000";
    case Scenario::kSS: return "SS";
  }
  return "?";
}

bool scenario_is_dynamic(Scenario s) {
  switch (s) {
    case Scenario::kDF:
    case Scenario::kDS0:
    case Scenario::kDS500:
    case Scenario::kDS1000:
      return true;
    default:
      return false;
  }
}

namespace {

coherence::CoherencePolicy scenario_policy(Scenario s) {
  switch (s) {
    case Scenario::kDS500:
    case Scenario::kSS500:
      return coherence::CoherencePolicy::time_based(
          sim::Duration::from_millis(500));
    case Scenario::kDS1000:
    case Scenario::kSS1000:
      return coherence::CoherencePolicy::time_based(
          sim::Duration::from_millis(1000));
    default:
      return coherence::CoherencePolicy::none();
  }
}

bool scenario_in_san_diego(Scenario s) {
  return s != Scenario::kDF && s != Scenario::kSF;
}

// Hand-wires the static baselines. Returns one entry instance per client.
std::vector<runtime::RuntimeInstanceId> deploy_static(
    Framework& fw, Scenario scenario, std::size_t num_clients,
    const CaseStudySites& sites, const mail::MailConfigPtr& /*config*/) {
  runtime::SmockRuntime& rt = fw.runtime();
  const spec::ServiceSpec* spec = fw.server().service_spec("SecureMail");
  PSF_CHECK(spec != nullptr);

  const auto& existing = fw.server().existing_instances("SecureMail");
  PSF_CHECK_MSG(existing.size() == 1, "expected exactly the home MailServer");
  const runtime::RuntimeInstanceId mail_server = existing[0].runtime_id;

  auto install_sync = [&](const std::string& component, net::NodeId node,
                          planner::FactorBindings factors =
                              {}) -> runtime::RuntimeInstanceId {
    const spec::ComponentDef* def = spec->find_component(component);
    PSF_CHECK(def != nullptr);
    runtime::RuntimeInstanceId out = 0;
    rt.install(*def, node, std::move(factors), node,
               [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                 PSF_CHECK_MSG(id.has_value(), id.status().to_string());
                 out = *id;
               });
    fw.run_until_condition([&out]() { return out != 0; },
                           sim::Duration::from_seconds(60));
    PSF_CHECK(out != 0);
    return out;
  };

  const net::NodeId client_node =
      scenario_in_san_diego(scenario) ? sites.sd_client : sites.ny_client;

  // Shared server-side chain.
  runtime::RuntimeInstanceId chain_head = mail_server;
  if (scenario == Scenario::kSS0 || scenario == Scenario::kSS500 ||
      scenario == Scenario::kSS1000) {
    const runtime::RuntimeInstanceId decryptor =
        install_sync("Decryptor", sites.mail_home);
    const runtime::RuntimeInstanceId encryptor =
        install_sync("Encryptor", sites.sd_client);
    planner::FactorBindings vms_factors;
    vms_factors.values["TrustLevel"] = spec::PropertyValue::integer(4);
    const runtime::RuntimeInstanceId view =
        install_sync("ViewMailServer", sites.sd_client, vms_factors);

    PSF_CHECK(rt.wire(decryptor, "ServerInterface", mail_server).is_ok());
    PSF_CHECK(rt.wire(encryptor, "DecryptorInterface", decryptor).is_ok());
    PSF_CHECK(rt.wire(view, "ServerInterface", encryptor).is_ok());
    PSF_CHECK(rt.start(decryptor).is_ok());
    PSF_CHECK(rt.start(encryptor).is_ok());
    PSF_CHECK(rt.start(view).is_ok());
    // Let the replica registration round-trip settle (bounded: time-based
    // coherence timers keep the event queue non-empty forever).
    fw.run_for(sim::Duration::from_seconds(5));
    chain_head = view;
  }

  std::vector<runtime::RuntimeInstanceId> entries;
  for (std::size_t c = 0; c < num_clients; ++c) {
    const runtime::RuntimeInstanceId mc =
        install_sync("MailClient", client_node);
    PSF_CHECK(rt.wire(mc, "ServerInterface", chain_head).is_ok());
    PSF_CHECK(rt.start(mc).is_ok());
    entries.push_back(mc);
  }
  fw.run_for(sim::Duration::from_seconds(1));
  return entries;
}

}  // namespace

CoherenceSummary collect_coherence_summary(runtime::SmockRuntime& rt) {
  CoherenceSummary out;
  auto add_directory = [&out](const coherence::CoherenceDirectory* dir) {
    if (dir == nullptr) return;
    const coherence::DirectoryStats& d = dir->stats();
    out.push_rpcs += d.pushes;
    out.push_updates += d.push_updates;
    out.push_rpcs_saved += d.push_rpcs_saved;
    out.push_bytes += d.push_bytes;
    out.replicas_evicted += d.replicas_evicted;
  };
  for (runtime::RuntimeInstanceId id : rt.instance_ids()) {
    runtime::Component* component = rt.instance(id).component.get();
    if (auto* view = dynamic_cast<mail::ViewMailServerComponent*>(component)) {
      if (const coherence::ReplicaCoherence* rc = view->replica_coherence()) {
        const coherence::ReplicaStats& s = rc->stats();
        out.flushes += s.flushes;
        out.updates_flushed += s.updates_flushed;
        out.bytes_flushed += s.bytes_flushed;
        out.updates_coalesced += s.updates_coalesced;
        out.coalesced_bytes_saved += s.coalesced_bytes_saved;
        out.blocked_on_flush_ms += s.blocked_on_flush_ms;
        out.residual_pending += rc->pending();
      }
      add_directory(view->directory());
    } else if (auto* home = dynamic_cast<mail::MailServerComponent*>(component)) {
      add_directory(home->directory());
    }
  }
  return out;
}

ScenarioResult run_scenario(Scenario scenario, std::size_t num_clients,
                            const WorkloadParams& params) {
  PSF_CHECK(num_clients >= 1);

  CaseStudySites sites;
  net::Network network = case_study_network(&sites);
  FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  Framework fw(std::move(network), options);

  auto config = std::make_shared<mail::MailServiceConfig>();
  config->view_policy = scenario_policy(scenario);
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  {
    auto st = fw.register_service(mail::mail_registration(sites.mail_home),
                                  mail::mail_translator());
    PSF_CHECK_MSG(st.is_ok(), st.to_string());
  }

  ScenarioResult result;
  result.scenario = scenario;
  result.clients = num_clients;

  const net::NodeId client_node =
      scenario_in_san_diego(scenario) ? sites.sd_client : sites.ny_client;

  // ---- deployment ---------------------------------------------------------
  std::vector<std::unique_ptr<runtime::GenericProxy>> proxies;
  std::vector<runtime::RuntimeInstanceId> entries;

  if (scenario_is_dynamic(scenario)) {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(4));
    defaults.request_rate_rps = 50.0;
    defaults.objective = planner::Objective::kMinLatency;

    for (std::size_t c = 0; c < num_clients; ++c) {
      auto proxy = fw.make_proxy(client_node, "SecureMail", defaults);
      util::Status bind_status = util::internal_error("bind incomplete");
      bool bound = false;
      proxy->bind([&bind_status, &bound](util::Status st) {
        bind_status = st;
        bound = true;
      });
      fw.run_until_condition([&bound]() { return bound; },
                             sim::Duration::from_seconds(120));
      PSF_CHECK_MSG(bind_status.is_ok(), bind_status.to_string());
      if (c == 0) {
        result.one_time = proxy->outcome().costs;
        result.plan_description =
            proxy->outcome().plan.to_string(fw.network());
      }
      proxies.push_back(std::move(proxy));
    }
  } else {
    entries = deploy_static(fw, scenario, num_clients, sites, config);
  }

  // ---- workload ----------------------------------------------------------
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    WorkloadClient::Transport transport;
    if (scenario_is_dynamic(scenario)) {
      runtime::GenericProxy* proxy = proxies[c].get();
      transport = [proxy](runtime::Request request,
                          runtime::ResponseCallback done) {
        proxy->invoke(std::move(request), std::move(done));
      };
    } else {
      runtime::SmockRuntime* rt = &fw.runtime();
      const runtime::RuntimeInstanceId entry = entries[c];
      transport = [rt, client_node, entry](runtime::Request request,
                                           runtime::ResponseCallback done) {
        rt->invoke_from_node(client_node, entry, std::move(request),
                             std::move(done));
      };
    }
    clients.push_back(std::make_unique<WorkloadClient>(
        fw.runtime(), scenario_name(scenario) + std::string("-user-") +
                          std::to_string(c),
        config, std::move(transport), params));
  }
  for (auto& client : clients) client->start();

  // Time-based coherence timers tick forever; run until all clients finish
  // rather than until the event queue drains.
  const sim::Duration step = sim::Duration::from_millis(250);
  std::size_t guard = 1000000;
  auto all_done = [&clients]() {
    for (const auto& c : clients) {
      if (!c->finished()) return false;
    }
    return true;
  };
  while (!all_done() && guard-- > 0) {
    fw.run_for(step);
  }
  PSF_CHECK_MSG(all_done(), "workload did not converge");

  // ---- aggregation -----------------------------------------------------
  double weighted_mean = 0.0;
  std::size_t total_samples = 0;
  double p50_sum = 0.0, p95_sum = 0.0, max_ms = 0.0;
  for (auto& client : clients) {
    const WorkloadStats& ws = client->stats();
    result.workload.sends_ok += ws.sends_ok;
    result.workload.sends_failed += ws.sends_failed;
    result.workload.receives_ok += ws.receives_ok;
    result.workload.receives_failed += ws.receives_failed;
    result.workload.messages_received += ws.messages_received;
    result.workload.plaintext_mismatches += ws.plaintext_mismatches;

    auto& s = client->send_latency_ms();
    weighted_mean += s.mean() * static_cast<double>(s.count());
    total_samples += s.count();
    p50_sum += s.percentile(50.0);
    p95_sum += s.percentile(95.0);
    max_ms = std::max(max_ms, s.max());
  }
  result.mean_send_ms =
      total_samples == 0 ? 0.0
                         : weighted_mean / static_cast<double>(total_samples);
  result.p50_send_ms = p50_sum / static_cast<double>(clients.size());
  result.p95_send_ms = p95_sum / static_cast<double>(clients.size());
  result.max_send_ms = max_ms;
  result.coherence = collect_coherence_summary(fw.runtime());
  return result;
}

}  // namespace psf::core
