#include "core/workload.hpp"

#include "util/logging.hpp"

namespace psf::core {

WorkloadClient::WorkloadClient(runtime::SmockRuntime& runtime,
                               std::string user, mail::MailConfigPtr config,
                               Transport transport, WorkloadParams params)
    : runtime_(runtime),
      user_(std::move(user)),
      config_(std::move(config)),
      transport_(std::move(transport)),
      params_(params) {
  PSF_CHECK(params_.sends > 0);
}

void WorkloadClient::start() {
  // Account setup time: the user's per-level keys exist before any message
  // is sealed (paper §2).
  config_->keys->provision_user(user_, mail::kMaxSensitivity);
  started_ = runtime_.simulator().now();
  schedule_next();
}

void WorkloadClient::schedule_next() {
  runtime_.simulator().schedule(params_.think, [this]() { issue_op(); });
}

void WorkloadClient::issue_op() {
  // Interleave: after every (sends / receives) sends, one receive.
  const std::size_t sends_per_receive =
      params_.receives == 0 ? params_.sends + 1
                            : std::max<std::size_t>(1, params_.sends /
                                                           params_.receives);
  const bool receive_due =
      receives_issued_ < params_.receives &&
      sends_issued_ > 0 &&
      sends_issued_ % sends_per_receive == 0 &&
      receives_issued_ < sends_issued_ / sends_per_receive;

  if (sends_issued_ < params_.sends && !receive_due) {
    issue_send();
  } else if (receives_issued_ < params_.receives) {
    issue_receive();
  } else if (sends_issued_ < params_.sends) {
    issue_send();
  } else {
    finished_ = true;
  }
}

void WorkloadClient::issue_send() {
  ++sends_issued_;
  const bool high = params_.high_send_every != 0 &&
                    sends_issued_ % params_.high_send_every == 0;

  auto body = std::make_shared<mail::SendBody>();
  body->message.id = next_message_id_++;
  body->message.from = user_;
  body->message.to = user_;  // self-mail: inbox observable by our receives
  body->message.subject = "msg-" + std::to_string(body->message.id);
  body->message.sensitivity =
      high ? params_.high_sensitivity : params_.low_sensitivity;
  body->message.plaintext.assign(params_.body_bytes,
                                 static_cast<std::uint8_t>(body->message.id));

  runtime::Request request;
  request.op = mail::ops::kSend;
  request.body = body;
  request.wire_bytes = mail::send_wire_bytes(body->message);
  request.principal = user_;

  const sim::Time issued = runtime_.simulator().now();
  transport_(std::move(request), [this, issued](runtime::Response response) {
    if (response.ok) {
      ++stats_.sends_ok;
    } else {
      ++stats_.sends_failed;
      PSF_DEBUG() << "send failed: " << response.error;
    }
    send_latency_ms_.add((runtime_.simulator().now() - issued).millis());
    op_completed();
  });
}

void WorkloadClient::issue_receive() {
  ++receives_issued_;
  auto body = std::make_shared<mail::ReceiveBody>();
  body->user = user_;
  body->max_messages = 16;
  body->include_high_sensitivity =
      params_.high_receive_every != 0 &&
      receives_issued_ % params_.high_receive_every == 0;

  runtime::Request request;
  request.op = mail::ops::kReceive;
  request.body = body;
  request.wire_bytes = 256;
  request.principal = user_;

  transport_(std::move(request), [this](runtime::Response response) {
    if (response.ok) {
      ++stats_.receives_ok;
      if (const auto* result =
              runtime::body_as<mail::ReceiveResultBody>(response)) {
        stats_.messages_received += result->messages.size();
        for (const mail::MailMessage& m : result->messages) {
          // End-to-end integrity: a decrypted body must match what we sent.
          if (!m.plaintext.empty() &&
              m.plaintext.front() != static_cast<std::uint8_t>(m.id)) {
            ++stats_.plaintext_mismatches;
          }
        }
      }
    } else {
      ++stats_.receives_failed;
      PSF_DEBUG() << "receive failed: " << response.error;
    }
    op_completed();
  });
}

void WorkloadClient::op_completed() {
  if (stats_.first_op_ms < 0.0) {
    stats_.first_op_ms = (runtime_.simulator().now() - started_).millis();
  }
  if (sends_issued_ >= params_.sends &&
      receives_issued_ >= params_.receives) {
    finished_ = true;
    return;
  }
  schedule_next();
}

}  // namespace psf::core
