// Deterministic fault schedules for chaos experiments.
//
// A FaultPlan is a list of timed fault events — link failures/heals, loss
// bursts, partitions, node crashes/revivals — built either by explicit
// scripting (fail_link_at, crash_node_at, ...) or by seeded randomization
// (random_link_flaps). arm() schedules every event on the framework's
// simulator and seeds the runtime's loss RNG from the plan seed, so the same
// plan + seed replays a bit-identical trace: identical event times, identical
// loss draws, identical counters.
//
// Grammar (one entry per line of to_string()):
//   @<t>ms fail-link <link>         | heal-link <link>
//   @<t>ms set-loss <link> <p>
//   @<t>ms crash-node <node>        | revive-node <node>
//   @<t>ms partition [<nodes>] | [<nodes>]   (heal-partition undoes it)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace psf::core {

struct FaultEvent {
  enum class Kind {
    kFailLink,
    kHealLink,
    kSetLinkLoss,
    kCrashNode,
    kReviveNode,
    kPartition,
    kHealPartition,
  };

  Kind kind;
  sim::Duration at = sim::Duration::zero();  // offset from arm() time
  net::LinkId link;                          // link events
  double loss = 0.0;                         // kSetLinkLoss
  net::NodeId node;                          // node events
  std::vector<net::NodeId> side_a;           // partition events
  std::vector<net::NodeId> side_b;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultEvent>& events() const { return events_; }

  // ---- scripted schedule --------------------------------------------------
  FaultPlan& fail_link_at(sim::Duration at, net::LinkId link);
  FaultPlan& heal_link_at(sim::Duration at, net::LinkId link);
  // Convenience: fail at `at`, heal at `at + down_for`.
  FaultPlan& flap_link(net::LinkId link, sim::Duration at,
                       sim::Duration down_for);
  FaultPlan& set_link_loss_at(sim::Duration at, net::LinkId link, double loss);
  // Convenience: loss `p` during [at, at + duration), then back to 0.
  FaultPlan& loss_burst(net::LinkId link, sim::Duration at,
                        sim::Duration duration, double loss);
  FaultPlan& crash_node_at(sim::Duration at, net::NodeId node);
  FaultPlan& revive_node_at(sim::Duration at, net::NodeId node);
  // Severs every link crossing the cut at `at`; heal_partition_at restores
  // exactly the links the partition severed (computed at fire time).
  FaultPlan& partition_at(sim::Duration at, std::vector<net::NodeId> side_a,
                          std::vector<net::NodeId> side_b);
  FaultPlan& heal_partition_at(sim::Duration at,
                               std::vector<net::NodeId> side_a,
                               std::vector<net::NodeId> side_b);
  // Convenience: partition at `at`, heal at `at + down_for`.
  FaultPlan& partition_window(sim::Duration at, sim::Duration down_for,
                              std::vector<net::NodeId> side_a,
                              std::vector<net::NodeId> side_b);

  // ---- randomized schedule ------------------------------------------------
  // Draws `count` link flaps from the plan seed: uniformly random link,
  // start uniform in [window_start, window_end), downtime uniform in
  // [min_down, max_down]. Deterministic for a fixed seed and network.
  FaultPlan& random_link_flaps(const net::Network& network, std::size_t count,
                               sim::Duration window_start,
                               sim::Duration window_end,
                               sim::Duration min_down, sim::Duration max_down);

  // Schedules every event on fw's simulator (offsets relative to now) and
  // seeds the runtime's loss RNG from the plan seed. Call once.
  void arm(Framework& fw) const;

  // Human-readable schedule; node/link ids resolved against `network`.
  std::string to_string(const net::Network& network) const;

 private:
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
};

}  // namespace psf::core
