#include "core/redeploy.hpp"

#include <set>

#include "util/logging.hpp"

namespace psf::core {

const char* redeploy_outcome_name(RedeployEvent::Outcome outcome) {
  switch (outcome) {
    case RedeployEvent::Outcome::kStillValid: return "still-valid";
    case RedeployEvent::Outcome::kRedeployed: return "redeployed";
    case RedeployEvent::Outcome::kUnsatisfiable: return "unsatisfiable";
    case RedeployEvent::Outcome::kFailed: return "failed";
  }
  return "?";
}

RedeploymentManager::RedeploymentManager(Framework& framework,
                                         std::string service)
    : fw_(framework), service_(std::move(service)) {
  PSF_CHECK_MSG(fw_.server().service_spec(service_) != nullptr,
                "service not registered");
  fw_.monitor().subscribe(
      [this](const runtime::NetworkMonitor::ChangeEvent&) {
        // Fresh properties first, then decide what still holds.
        auto st = fw_.server().refresh_environment(service_);
        if (!st) {
          PSF_WARN() << "redeploy: environment refresh failed: "
                     << st.to_string();
          return;
        }
        check_now();
      });
}

std::size_t RedeploymentManager::track(runtime::AccessOutcome outcome,
                                       planner::PlanRequest request) {
  PSF_CHECK_MSG(outcome.instances.size() == outcome.plan.placements.size(),
                "AccessOutcome missing per-placement instances");
  backing_.push_back(outcome.instances);
  tracked_.push_back(Tracked{std::move(outcome), std::move(request)});
  return tracked_.size() - 1;
}

void RedeploymentManager::check_now() {
  if (checking_) return;  // a monitor storm must not recurse
  checking_ = true;
  for (std::size_t i = 0; i < tracked_.size(); ++i) revalidate(i);
  checking_ = false;
}

void RedeploymentManager::revalidate(std::size_t index) {
  Tracked& tracked = tracked_[index];
  const spec::ServiceSpec* spec = fw_.server().service_spec(service_);
  const planner::EnvironmentView* env = fw_.server().environment(service_);
  PSF_CHECK(spec != nullptr && env != nullptr);

  planner::ValidationReport report = planner::validate_plan(
      *spec, *env, tracked.request, tracked.outcome.plan,
      fw_.server().existing_instances(service_));
  // Plan-level validation cannot see runtime crashes: also require every
  // backing instance to still be alive.
  for (std::size_t i = 0; i < backing_[index].size(); ++i) {
    if (!fw_.runtime().exists(backing_[index][i])) {
      report.violations.push_back(planner::Violation{
          planner::Violation::Kind::kStructure,
          static_cast<planner::InstanceId>(i),
          "backing runtime instance " +
              std::to_string(backing_[index][i]) + " no longer exists"});
    }
  }
  if (report.ok()) {
    events_.push_back(RedeployEvent{fw_.simulator().now(), index,
                                    RedeployEvent::Outcome::kStillValid,
                                    ""});
    return;
  }

  PSF_INFO() << "redeploy: tracked deployment " << index
             << " invalid after network change:\n"
             << report.to_string();

  // Replan + deploy asynchronously; the swap happens in the callback so
  // this is safe to call from inside a simulator event.
  fw_.server().request_access(
      service_, tracked.request,
      [this, index, violations = report.to_string()](
          util::Expected<runtime::AccessOutcome> fresh) {
        RedeployEvent event;
        event.at = fw_.simulator().now();
        event.tracked_index = index;
        if (!fresh.has_value()) {
          event.outcome =
              fresh.status().code() == util::ErrorCode::kUnsatisfiable
                  ? RedeployEvent::Outcome::kUnsatisfiable
                  : RedeployEvent::Outcome::kFailed;
          event.detail = violations + "; replan: " + fresh.status().to_string();
          events_.push_back(std::move(event));
          return;
        }
        runtime::DeployedPlan deployed;
        deployed.instances = fresh->instances;
        deployed.entry = fresh->entry;
        auto st =
            swap_deployment(index, tracked_[index], fresh->plan, deployed);
        if (!st) {
          event.outcome = RedeployEvent::Outcome::kFailed;
          event.detail = violations + "; swap: " + st.to_string();
        } else {
          ++redeploys_;
          event.outcome = RedeployEvent::Outcome::kRedeployed;
          event.detail = violations;
          // Record the new backing (entry slot holds the preserved old
          // entry id, set by swap_deployment via tracked_[index]).
          backing_[index] = tracked_[index].outcome.instances;
        }
        events_.push_back(std::move(event));
      });
}

util::Status RedeploymentManager::swap_deployment(
    std::size_t index, Tracked& tracked,
    const planner::DeploymentPlan& new_plan,
    const runtime::DeployedPlan& deployed) {
  runtime::SmockRuntime& rt = fw_.runtime();
  const runtime::RuntimeInstanceId old_entry = tracked.outcome.entry;
  const runtime::RuntimeInstanceId new_entry = deployed.entry;
  if (!rt.exists(old_entry)) {
    return util::failed_precondition("old entry instance vanished");
  }

  // 1. Graft the new chain onto the client's live entry instance so the
  //    proxy binding survives the reconfiguration.
  for (const auto& [iface, target] : rt.instance(new_entry).wires) {
    if (auto st = rt.wire(old_entry, iface, target); !st) return st;
  }

  // 2. The freshly deployed entry was only a template; retire it.
  //    (absorb_deployment never pooled it, so no forget needed.)
  if (new_entry != old_entry) {
    if (auto st = rt.uninstall(new_entry); !st) return st;
  }

  // 3. Release the old plan's load reservations on reused instances.
  //    (Copies: step 4 overwrites tracked.outcome in place.)
  const planner::DeploymentPlan old_plan = tracked.outcome.plan;
  const std::vector<runtime::RuntimeInstanceId> old_backing =
      tracked.outcome.instances;
  for (std::size_t i = 0; i < old_plan.placements.size(); ++i) {
    const planner::Placement& p = old_plan.placements[i];
    if (p.reuse_existing) {
      (void)fw_.server().release_load(service_, p.existing_runtime_id,
                                      p.inbound_rate_rps);
    }
  }

  // 4. Adopt the new plan, preserving the live entry id.
  std::vector<runtime::RuntimeInstanceId> new_backing = deployed.instances;
  for (auto& id : new_backing) {
    if (id == new_entry) id = old_entry;
  }
  tracked.outcome.plan = new_plan;
  tracked.outcome.instances = new_backing;
  // entry id stays old_entry.

  // 5. Garbage-collect: components the old plan deployed that no tracked
  //    deployment (including the new one) references anymore.
  // (backing_[index] still holds the old ids at this point — exclude it,
  // or nothing old would ever be collectible.)
  const std::set<runtime::RuntimeInstanceId> still_used = [&] {
    std::set<runtime::RuntimeInstanceId> used;
    for (std::size_t i = 0; i < backing_.size(); ++i) {
      if (i == index) continue;
      used.insert(backing_[i].begin(), backing_[i].end());
    }
    used.insert(new_backing.begin(), new_backing.end());
    // Transitive closure over live wiring: a reused view may still forward
    // through its original tunnel, so everything reachable from a used
    // instance stays alive.
    std::vector<runtime::RuntimeInstanceId> frontier(used.begin(),
                                                     used.end());
    while (!frontier.empty()) {
      const runtime::RuntimeInstanceId id = frontier.back();
      frontier.pop_back();
      if (!rt.exists(id)) continue;
      for (const auto& [iface, target] : rt.instance(id).wires) {
        if (used.insert(target).second) frontier.push_back(target);
      }
    }
    return used;
  }();
  for (std::size_t i = 0; i < old_plan.placements.size(); ++i) {
    const planner::Placement& p = old_plan.placements[i];
    const runtime::RuntimeInstanceId id = old_backing[i];
    if (p.reuse_existing) continue;           // not ours to retire
    if (id == old_entry) continue;            // preserved
    if (still_used.count(id) != 0) continue;  // someone else still wired
    if (!rt.exists(id)) continue;
    if (rt.instance(id).def->static_placement) continue;  // never retire
    (void)fw_.server().forget_instance(service_, id);
    if (auto st = rt.uninstall(id); !st) {
      PSF_WARN() << "redeploy: failed to retire instance " << id << ": "
                 << st.to_string();
    }
  }
  return util::Status::ok();
}

}  // namespace psf::core
