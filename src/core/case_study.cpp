#include "core/case_study.hpp"

#include "util/assert.hpp"

namespace psf::core {

namespace {

std::vector<net::NodeId> build_site(net::Network& network,
                                    const std::string& prefix,
                                    std::size_t count, std::int64_t trust,
                                    double cpu) {
  std::vector<net::NodeId> nodes;
  for (std::size_t i = 0; i < count; ++i) {
    net::Credentials credentials;
    credentials.set("trust", trust);
    credentials.set("secure", true);
    credentials.set("site", prefix);
    nodes.push_back(network.add_node(prefix + "-" + std::to_string(i), cpu,
                                     std::move(credentials)));
  }
  // Full mesh of secure, fast intra-site links (Fig. 5: 0 ms / 100 Mb/s).
  net::Credentials secure;
  secure.set("secure", true);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      network.add_link(nodes[i], nodes[j], 100e6, sim::Duration::zero(),
                       secure);
    }
  }
  return nodes;
}

}  // namespace

net::Network case_study_network(CaseStudySites* sites,
                                const CaseStudyOptions& options) {
  PSF_CHECK(sites != nullptr);
  PSF_CHECK(options.nodes_per_site >= 2);
  net::Network network;

  sites->new_york = build_site(network, "ny", options.nodes_per_site,
                               /*trust=*/5, options.node_cpu);
  sites->san_diego = build_site(network, "sd", options.nodes_per_site,
                                /*trust=*/4, options.node_cpu);
  sites->seattle = build_site(network, "sea", options.nodes_per_site,
                              /*trust=*/2, options.node_cpu);

  // Inter-site WAN links: insecure, slow, limited bandwidth (Fig. 5). The
  // gateway is node 0 of each site.
  net::Credentials insecure;
  insecure.set("secure", false);
  network.add_link(sites->san_diego[0], sites->new_york[0], 50e6,
                   sim::Duration::from_millis(100), insecure);
  network.add_link(sites->seattle[0], sites->san_diego[0], 20e6,
                   sim::Duration::from_millis(200), insecure);
  network.add_link(sites->seattle[0], sites->new_york[0], 8e6,
                   sim::Duration::from_millis(400), insecure);

  sites->mail_home = sites->new_york[1];
  sites->ny_client = sites->new_york[options.nodes_per_site - 1];
  sites->sd_client = sites->san_diego[options.nodes_per_site - 1];
  sites->sea_client = sites->seattle[options.nodes_per_site - 1];
  return network;
}

}  // namespace psf::core
