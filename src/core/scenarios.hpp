// The nine §4.2 / Fig. 7 scenarios.
//
// Dynamic deployments (framework-generated):
//   DF      — clients in New York, fast local connection to the MailServer;
//   DS0     — clients in San Diego, slow link, no coherence propagation;
//   DS500   — same, coherence propagation every 500 ms;
//   DS1000  — same, every 1000 ms.
// Static baselines (hand-wired, mirroring the paper's hand-generated
// configurations):
//   SF      — MailClient@NY -> MailServer;
//   SS0/SS500/SS1000 — MailClient@SD -> ViewMailServer@SD ->
//             Encryptor@SD -> Decryptor@NY -> MailServer, with the three
//             coherence settings;
//   SS      — MailClient@SD -> MailServer directly over the slow link (the
//             usability baseline a naive static deployment gives).
//
// The paper labels the coherence variants "none, every 500 messages, every
// 1000 messages"; at the case study's scale (100 messages per client) a
// 500-message count trigger would never fire for small client counts, so —
// consistent with §3.2's emphasis on time-driven consistency — this
// reproduction interprets 500/1000 as propagation periods in milliseconds.
// EXPERIMENTS.md discusses the ambiguity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/workload.hpp"
#include "runtime/generic.hpp"

namespace psf::core {

enum class Scenario { kDF, kDS0, kDS500, kDS1000, kSF, kSS0, kSS500, kSS1000, kSS };

inline constexpr Scenario kAllScenarios[] = {
    Scenario::kDF,  Scenario::kDS0,   Scenario::kDS500, Scenario::kDS1000,
    Scenario::kSF,  Scenario::kSS0,   Scenario::kSS500, Scenario::kSS1000,
    Scenario::kSS};

const char* scenario_name(Scenario s);
bool scenario_is_dynamic(Scenario s);

// Coherence data-path cost of a finished run, aggregated over every view
// replica module and directory in the deployment (home + views).
struct CoherenceSummary {
  std::uint64_t flushes = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t bytes_flushed = 0;
  std::uint64_t updates_coalesced = 0;
  std::uint64_t coalesced_bytes_saved = 0;
  std::uint64_t push_rpcs = 0;
  std::uint64_t push_updates = 0;
  std::uint64_t push_rpcs_saved = 0;
  std::uint64_t push_bytes = 0;
  std::uint64_t replicas_evicted = 0;
  std::size_t residual_pending = 0;  // staleness left at the replicas
  double blocked_on_flush_ms = 0.0;  // total time views deferred requests
};

struct ScenarioResult {
  Scenario scenario = Scenario::kDF;
  std::size_t clients = 1;

  double mean_send_ms = 0.0;
  double p50_send_ms = 0.0;
  double p95_send_ms = 0.0;
  double max_send_ms = 0.0;

  WorkloadStats workload;  // aggregated across clients
  CoherenceSummary coherence;

  // Dynamic scenarios: the first client's one-time costs and plan summary.
  runtime::AccessCosts one_time;
  std::string plan_description;
};

// Builds a fresh case-study world, deploys per the scenario, runs
// `num_clients` workload clients to completion, and reports latencies.
ScenarioResult run_scenario(Scenario scenario, std::size_t num_clients,
                            const WorkloadParams& params = {});

// Sums the coherence stats of every mail component alive in `rt` (each
// ViewMailServer's replica module + directory, the home's directory).
CoherenceSummary collect_coherence_summary(runtime::SmockRuntime& rt);

}  // namespace psf::core
