// Megascale workload: the region-parallel engine driving hundreds of
// thousands of service clients over a generated WAN topology.
//
// The full SmockRuntime charges every hop of every transfer through shared
// mutable state, which is inherently single-threaded. This harness models
// the same request shape (client -> server -> client over precomputed
// routes, with serialization on the bottleneck link) as REGION-CONFINED
// state: each client lives in the region of its node, the service endpoint
// in the region of its host, and the only cross-region interaction is
// posting messages whose delivery time already includes at least one
// cut-link latency — exactly the conservative-lookahead contract of
// sim::ParallelSimulator.
//
// Everything is deterministic: topology from a seeded generator, request
// jitter from per-client counter hashes (no shared RNG), and the engine's
// (time, region, origin, seq) order. A run with 8 workers produces the
// same trace, counters, and end time as the serial run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/parallel.hpp"
#include "sim/region.hpp"

namespace psf::core {

struct MegascaleConfig {
  std::size_t nodes = 100;     // Waxman topology size
  std::size_t regions = 8;     // simulation regions
  std::size_t clients = 100'000;
  std::size_t requests_per_client = 3;
  std::uint64_t request_bytes = 2 * 1024;
  std::uint64_t response_bytes = 16 * 1024;
  // Mean client think time between requests; actual gaps are jittered
  // deterministically per (client, request) in [0.5, 1.5) * mean.
  sim::Duration mean_think = sim::Duration::from_millis(200);
  std::uint64_t seed = 42;
  net::NodeId server_node{0};  // service endpoint host
  bool record_trace = false;   // per-event trace (equivalence tests only)
};

struct MegascaleReport {
  std::size_t events_executed = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;  // no route to the server
  double sim_seconds = 0.0;           // simulated end time
  std::size_t cut_links = 0;
  sim::Duration lookahead = sim::Duration::zero();
  sim::ParallelStats engine;
};

class MegascaleWorld {
 public:
  explicit MegascaleWorld(MegascaleConfig config);

  const MegascaleConfig& config() const { return config_; }
  net::Network& network() { return network_; }
  sim::ParallelSimulator& engine() { return *engine_; }
  const sim::RegionPartition& partition() const { return partition_; }

  // Drives the workload to completion with `workers` threads and returns
  // the aggregate report. May be preceded by run_until() calls.
  MegascaleReport run(std::size_t workers);

  // Partial run for chaos composition: execute up to `deadline`, then the
  // caller may mutate the network (fail links/nodes) at quiescence —
  // followed by refresh_routes() — and resume. Latencies must not be
  // lowered (the partition's lookahead would become unsound).
  std::size_t run_until(sim::Time deadline, std::size_t workers);

  // Recomputes the route cache after a topology mutation; only legal
  // between runs (workers read the cache concurrently).
  void refresh_routes() { network_.precompute_routes(); }

  MegascaleReport report() const;

 private:
  // Per-region shard of the workload state. Only this region's worker
  // touches it; alignment keeps neighboring shards off one cache line.
  struct alignas(64) RegionShard {
    struct Client {
      net::NodeId node;
      std::uint32_t done = 0;
    };
    std::vector<Client> clients;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t served = 0;  // meaningful in the server's shard
  };

  sim::Duration transfer_time(const net::Route& route,
                              std::uint64_t bytes) const;
  sim::Duration think_gap(sim::RegionId region, std::uint32_t idx,
                          std::uint32_t round) const;
  void issue_request(sim::RegionId region, std::uint32_t idx);
  void serve_request(sim::RegionId region, std::uint32_t idx);
  void complete_request(sim::RegionId region, std::uint32_t idx);

  MegascaleConfig config_;
  net::Network network_;
  sim::RegionPartition partition_;
  std::unique_ptr<sim::ParallelSimulator> engine_;
  std::vector<RegionShard> shards_;
  sim::RegionId server_region_ = 0;
  std::size_t events_before_ = 0;  // executed count carried across runs
};

}  // namespace psf::core
