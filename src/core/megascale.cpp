#include "core/megascale.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace psf::core {

namespace {

constexpr std::int64_t kUnreachableNs =
    std::numeric_limits<std::int64_t>::max() / 2;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MegascaleWorld::MegascaleWorld(MegascaleConfig config)
    : config_(config), network_([&config] {
        net::WaxmanParams params;
        params.num_nodes = config.nodes;
        util::Rng rng(config.seed);
        return net::generate_waxman(params, rng);
      }()) {
  PSF_CHECK(config_.clients > 0 && config_.requests_per_client > 0);
  PSF_CHECK(config_.server_node.value < network_.node_count());

  // Routes are read concurrently by region workers; fill the cache while
  // still single-threaded.
  network_.precompute_routes();

  partition_ = sim::partition_network(network_, config_.regions);
  engine_ = std::make_unique<sim::ParallelSimulator>(partition_.num_regions,
                                                     partition_.lookahead);
  engine_->enable_trace(config_.record_trace);
  server_region_ = partition_.region_of(config_.server_node);
  shards_.resize(partition_.num_regions);

  // Deal clients round-robin over nodes; each lives in its node's region.
  // Client state is indexed (region, slot) so a worker only ever touches
  // its own shard's contiguous storage.
  for (std::size_t c = 0; c < config_.clients; ++c) {
    const net::NodeId node{static_cast<std::uint32_t>(c % config_.nodes)};
    const sim::RegionId region = partition_.region_of(node);
    RegionShard& shard = shards_[region];
    const auto idx = static_cast<std::uint32_t>(shard.clients.size());
    shard.clients.push_back(RegionShard::Client{node, 0});
    // Stagger first requests across one think interval so the ramp-up does
    // not arrive as a single burst.
    const sim::Duration start = think_gap(region, idx, 0);
    engine_->seed_event(region, sim::Time::zero() + start,
                        [this, region, idx] { issue_request(region, idx); });
  }
}

sim::Duration MegascaleWorld::transfer_time(const net::Route& route,
                                            std::uint64_t bytes) const {
  if (route.bottleneck_bandwidth_bps <= 0.0 ||
      route.total_latency.nanos() >= kUnreachableNs) {
    return sim::Duration::from_nanos(kUnreachableNs);
  }
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / route.bottleneck_bandwidth_bps;
  return route.total_latency + sim::Duration::from_seconds(serialize_s);
}

sim::Duration MegascaleWorld::think_gap(sim::RegionId region,
                                        std::uint32_t idx,
                                        std::uint32_t round) const {
  // Deterministic per-(client, round) jitter in [0.5, 1.5) of the mean;
  // hashing avoids any shared RNG stream across regions.
  const std::uint64_t h = splitmix64(
      config_.seed ^ (static_cast<std::uint64_t>(region) << 48) ^
      (static_cast<std::uint64_t>(idx) << 16) ^ round);
  const double scale = 0.5 + static_cast<double>(h >> 11) * 0x1.0p-53;
  return sim::Duration::from_nanos(static_cast<std::int64_t>(
      static_cast<double>(config_.mean_think.nanos()) * scale));
}

void MegascaleWorld::issue_request(sim::RegionId region, std::uint32_t idx) {
  RegionShard& shard = shards_[region];
  const net::NodeId node = shard.clients[idx].node;
  const net::Route* route =
      network_.cached_route(node, config_.server_node);
  const sim::Duration fwd = transfer_time(*route, config_.request_bytes);
  if (fwd.nanos() >= kUnreachableNs) {
    // Partitioned away from the server; the request is lost. Move on to
    // the next round so the run still drains.
    ++shard.failed;
    complete_request(region, idx);
    return;
  }
  // The path to another region crosses at least one cut link, so fwd >=
  // min cut latency = the engine's lookahead; same-region posts are local.
  engine_->post(server_region_, engine_->now() + fwd,
                [this, region, idx] { serve_request(region, idx); });
}

void MegascaleWorld::serve_request(sim::RegionId region, std::uint32_t idx) {
  ++shards_[server_region_].served;
  const net::NodeId node = shards_[region].clients[idx].node;
  const net::Route* route =
      network_.cached_route(config_.server_node, node);
  const sim::Duration back = transfer_time(*route, config_.response_bytes);
  if (back.nanos() >= kUnreachableNs) return;  // response undeliverable
  engine_->post(region, engine_->now() + back,
                [this, region, idx] { complete_request(region, idx); });
}

void MegascaleWorld::complete_request(sim::RegionId region,
                                      std::uint32_t idx) {
  RegionShard& shard = shards_[region];
  RegionShard::Client& client = shard.clients[idx];
  ++client.done;
  ++shard.completed;
  if (client.done >= config_.requests_per_client) return;
  engine_->schedule_local(think_gap(region, idx, client.done),
                          [this, region, idx] {
                            issue_request(region, idx);
                          });
}

std::size_t MegascaleWorld::run_until(sim::Time deadline,
                                      std::size_t workers) {
  const std::size_t executed = engine_->run_until(deadline, workers);
  events_before_ += executed;
  return executed;
}

MegascaleReport MegascaleWorld::run(std::size_t workers) {
  run_until(sim::Time::max(), workers);
  return report();
}

MegascaleReport MegascaleWorld::report() const {
  MegascaleReport rep;
  rep.events_executed = events_before_;
  for (const RegionShard& shard : shards_) {
    // completed counts failed rounds too (they advance the same counter);
    // report them disjointly.
    rep.requests_completed += shard.completed;
    rep.requests_failed += shard.failed;
  }
  rep.requests_completed -= rep.requests_failed;
  rep.sim_seconds = engine_->end_time().seconds();
  rep.cut_links = partition_.cut_links;
  rep.lookahead = partition_.lookahead;
  rep.engine = engine_->stats();
  return rep;
}

}  // namespace psf::core
