#include "core/framework.hpp"

#include "analysis/analyzer.hpp"
#include "util/logging.hpp"

namespace psf::core {

namespace {

std::vector<net::NodeId> shard_hosts(const FrameworkOptions& options) {
  if (!options.lookup_shard_hosts.empty()) return options.lookup_shard_hosts;
  return {options.lookup_node};
}

}  // namespace

Framework::Framework(net::Network network, FrameworkOptions options)
    : network_(std::move(network)),
      sim_(),
      runtime_(sim_, network_),
      sharded_lookup_(network_, shard_hosts(options)),
      server_(runtime_, options.server_node, sharded_lookup_.shard(0)),
      monitor_(sim_, network_) {
  PSF_CHECK_MSG(network_.node_count() > 0, "empty network");
  PSF_CHECK(options.lookup_node.value < network_.node_count());
  PSF_CHECK(options.server_node.value < network_.node_count());
  for (std::size_t s = 0; s < sharded_lookup_.shard_count(); ++s) {
    PSF_CHECK(sharded_lookup_.shard(s).host().value < network_.node_count());
  }
  // Every monitor-reported change bumps the server's environment epochs so
  // cached access paths planned against the old topology are not replayed.
  server_.attach_monitor(monitor_);
  // Same treatment for lookup shard membership changes: a re-homed service
  // must be re-planned, never replayed from a stale cached path.
  sharded_lookup_.on_membership_change(
      [this] { server_.invalidate_cached_plans(); });
}

util::Status Framework::register_service(
    runtime::ServiceRegistration registration,
    std::shared_ptr<const planner::PropertyTranslator> translator) {
  // Pre-flight: run the static analyzer before anything touches the planner
  // or runtime. A spec with error-level findings would fail in confusing
  // ways mid-plan (or worse, plan wrongly); reject it here with the full
  // diagnostic list so the author can fix every problem in one round.
  analysis::DiagnosticList diags = analysis::analyze(registration.spec);
  if (diags.has_errors()) {
    return util::failed_precondition(
        "service spec '" + registration.spec.name +
        "' failed static analysis:\n" + diags.render_text());
  }

  util::Status result = util::internal_error("registration did not complete");
  bool completed = false;
  server_.register_service(std::move(registration), std::move(translator),
                           [&result, &completed](util::Status st) {
                             result = st;
                             completed = true;
                           });
  sim_.run();
  if (!completed) {
    return util::internal_error(
        "registration callback never fired (simulation deadlock)");
  }
  return result;
}

std::unique_ptr<runtime::GenericProxy> Framework::make_proxy(
    net::NodeId client_node, const std::string& service,
    planner::PlanRequest defaults) {
  return std::make_unique<runtime::GenericProxy>(runtime_, lookup(),
                                                 client_node, service,
                                                 std::move(defaults));
}

std::unique_ptr<runtime::GenericProxy> Framework::make_sharded_proxy(
    net::NodeId client_node, const std::string& service,
    planner::PlanRequest defaults) {
  auto proxy = make_proxy(client_node, service, std::move(defaults));
  proxy->use_sharded_lookup(sharded_lookup_);
  return proxy;
}

std::vector<runtime::RuntimeInstanceId> Framework::fail_node(
    net::NodeId node) {
  auto lost = crash_node(node);
  monitor_.report_node_failure(node);
  return lost;
}

std::vector<runtime::RuntimeInstanceId> Framework::crash_node(
    net::NodeId node) {
  auto lost = runtime_.crash_node(node);
  network_.set_node_up(node, false);
  if (lease_) lease_->note_crash(node, sim_.now());
  return lost;
}

void Framework::revive_node(net::NodeId node) {
  network_.set_node_up(node, true);
}

runtime::LeaseManager& Framework::enable_failure_detection(
    runtime::LeaseParams params) {
  PSF_CHECK_MSG(lease_ == nullptr, "failure detection already enabled");
  lease_ = std::make_unique<runtime::LeaseManager>(runtime_, monitor_,
                                                   lookup().host(), params);
  lease_->set_telemetry(&retry_telemetry_);
  lease_->watch_all();
  lease_->start();
  return *lease_;
}

void Framework::enable_adaptation(const std::string& service) {
  monitor_.subscribe(
      [this, service](const runtime::NetworkMonitor::ChangeEvent&) {
        auto st = server_.refresh_environment(service);
        if (!st) {
          PSF_WARN() << "adaptation refresh failed for '" << service
                     << "': " << st.to_string();
        }
      });
}

}  // namespace psf::core
