// Closed-loop mail workload driver for the §4.2 experiments: each client
// "simulates the behavior of a cluster of users by sending out 100 messages
// and receiving messages 10 times at the maximum rate permitted by a
// deployment" — here with a small configurable think time between
// operations so coherence periods are exercised.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mail/config.hpp"
#include "mail/types.hpp"
#include "runtime/generic.hpp"
#include "runtime/smock.hpp"
#include "util/stats.hpp"

namespace psf::core {

struct WorkloadParams {
  std::size_t sends = 100;
  std::size_t receives = 10;  // one interleaved after every sends/receives sends
  sim::Duration think = sim::Duration::from_millis(20);
  std::int64_t low_sensitivity = 2;   // cacheable at trust >= 2
  std::int64_t high_sensitivity = 5;  // only the home may store/serve these
  // Every Nth send (1-based) uses high sensitivity; 0 disables. Send
  // sensitivity shapes which traffic a view can absorb.
  std::size_t high_send_every = 0;
  // Every Nth receive asks for high-sensitivity content (forwarded past any
  // lower-trust view). This is what realizes the view's RRF at run time.
  std::size_t high_receive_every = 5;
  std::uint64_t body_bytes = 2048;
};

struct WorkloadStats {
  std::uint64_t sends_ok = 0;
  std::uint64_t sends_failed = 0;
  std::uint64_t receives_ok = 0;
  std::uint64_t receives_failed = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t plaintext_mismatches = 0;  // decrypted body != expected
  // Simulated ms from start() to the first completed operation. For a
  // proxy transport this includes the bind (lookup + planning +
  // deployment) — the client-visible one-time access cost that the plan
  // cache amortizes across a fleet. Negative until the first op completes.
  double first_op_ms = -1.0;
};

class WorkloadClient {
 public:
  // `transport` issues one service operation (a bound proxy's invoke, or a
  // direct invoke_from_node for hand-built deployments).
  using Transport =
      std::function<void(runtime::Request, runtime::ResponseCallback)>;

  WorkloadClient(runtime::SmockRuntime& runtime, std::string user,
                 mail::MailConfigPtr config, Transport transport,
                 WorkloadParams params);

  // Begins the closed loop (first op after one think time).
  void start();

  bool finished() const { return finished_; }
  const WorkloadStats& stats() const { return stats_; }
  util::SampleSet& send_latency_ms() { return send_latency_ms_; }

 private:
  void schedule_next();
  void issue_op();
  void issue_send();
  void issue_receive();
  void op_completed();

  runtime::SmockRuntime& runtime_;
  std::string user_;
  mail::MailConfigPtr config_;
  Transport transport_;
  WorkloadParams params_;

  std::size_t sends_issued_ = 0;
  std::size_t receives_issued_ = 0;
  std::uint64_t next_message_id_ = 1;
  sim::Time started_;
  bool finished_ = false;
  WorkloadStats stats_;
  util::SampleSet send_latency_ms_;
};

}  // namespace psf::core
