// Automatic redeployment (the paper's §6 future work, made concrete).
//
// A RedeploymentManager tracks live deployments (the AccessOutcome of each
// bound client plus the request that produced it). On every network-monitor
// event it:
//
//   1. re-translates the service's environment (via the generic server);
//   2. re-validates each tracked plan against the *new* environment with
//      the independent validator (planner/validate.hpp);
//   3. for plans that are now in violation — a link turned insecure, a node
//      lost trust, capacity vanished — replans, deploys the replacement,
//      rewires the client's live entry instance onto the new chain (so the
//      client's proxy binding keeps working and stateful views are reused,
//      preserving cached state), and garbage-collects components that no
//      tracked deployment references anymore.
//
// Redeployment is also triggerable manually (check_now) and reports every
// decision through its event log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "planner/validate.hpp"

namespace psf::core {

struct RedeployEvent {
  sim::Time at;
  std::size_t tracked_index = 0;
  enum class Outcome {
    kStillValid,     // validation passed; nothing to do
    kRedeployed,     // replanned + rewired successfully
    kUnsatisfiable,  // no valid plan exists in the new environment
    kFailed,         // replan succeeded but deployment/rewire failed
  };
  Outcome outcome = Outcome::kStillValid;
  std::string detail;  // violations found / failure reason
};

const char* redeploy_outcome_name(RedeployEvent::Outcome outcome);

class RedeploymentManager {
 public:
  // Subscribes to the framework's monitor. `service` must already be
  // registered.
  RedeploymentManager(Framework& framework, std::string service);

  // Tracks a live deployment. Returns its index.
  std::size_t track(runtime::AccessOutcome outcome,
                    planner::PlanRequest request);

  std::size_t tracked_count() const { return tracked_.size(); }
  const planner::DeploymentPlan& current_plan(std::size_t index) const {
    return tracked_.at(index).outcome.plan;
  }

  // Re-validates (and redeploys as needed) all tracked deployments against
  // the current environment. Invoked automatically on monitor events; also
  // callable directly. Appends to the event log.
  void check_now();

  const std::vector<RedeployEvent>& events() const { return events_; }
  std::size_t redeploy_count() const { return redeploys_; }

 private:
  struct Tracked {
    runtime::AccessOutcome outcome;
    planner::PlanRequest request;
  };

  void revalidate(std::size_t index);

  // Rewires `tracked`'s live entry instance to the new plan's wiring and
  // retires components that are no longer referenced.
  util::Status swap_deployment(std::size_t index, Tracked& tracked,
                               const planner::DeploymentPlan& new_plan,
                               const runtime::DeployedPlan& deployed);

  Framework& fw_;
  std::string service_;
  std::vector<Tracked> tracked_;
  // Runtime ids backing each tracked deployment, index-aligned with
  // tracked_[i].outcome.plan.placements.
  std::vector<std::vector<runtime::RuntimeInstanceId>> backing_;
  std::vector<RedeployEvent> events_;
  std::size_t redeploys_ = 0;
  bool checking_ = false;
};

}  // namespace psf::core
