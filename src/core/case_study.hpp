// The paper's §4 case-study world: the Fig. 5 three-site topology (New York
// main office, San Diego branch, Seattle partner organization).
//
// Link parameters from Fig. 5:
//   - intra-site: secure, 0 ms, 100 Mb/s;
//   - San Diego  <-> New York: insecure, 100 ms, 50 Mb/s;
//   - Seattle    <-> San Diego: insecure, 200 ms, 20 Mb/s;
//   - Seattle    <-> New York:  insecure, 400 ms,  8 Mb/s.
// Trust: New York nodes 5, San Diego 4, Seattle (partner) 2.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"

namespace psf::core {

struct CaseStudySites {
  std::vector<net::NodeId> new_york;
  std::vector<net::NodeId> san_diego;
  std::vector<net::NodeId> seattle;

  net::NodeId mail_home;   // New York node hosting the primary MailServer
  net::NodeId ny_client;   // client nodes used by the experiments
  net::NodeId sd_client;
  net::NodeId sea_client;
};

struct CaseStudyOptions {
  std::size_t nodes_per_site = 3;
  double node_cpu = 1e6;  // cpu units per second
};

net::Network case_study_network(CaseStudySites* sites,
                                const CaseStudyOptions& options = {});

}  // namespace psf::core
