#include "core/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace psf::core {

FaultPlan& FaultPlan::fail_link_at(sim::Duration at, net::LinkId link) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kFailLink;
  e.at = at;
  e.link = link;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal_link_at(sim::Duration at, net::LinkId link) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kHealLink;
  e.at = at;
  e.link = link;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::flap_link(net::LinkId link, sim::Duration at,
                                sim::Duration down_for) {
  fail_link_at(at, link);
  return heal_link_at(at + down_for, link);
}

FaultPlan& FaultPlan::set_link_loss_at(sim::Duration at, net::LinkId link,
                                       double loss) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kSetLinkLoss;
  e.at = at;
  e.link = link;
  e.loss = loss;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::loss_burst(net::LinkId link, sim::Duration at,
                                 sim::Duration duration, double loss) {
  set_link_loss_at(at, link, loss);
  return set_link_loss_at(at + duration, link, 0.0);
}

FaultPlan& FaultPlan::crash_node_at(sim::Duration at, net::NodeId node) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrashNode;
  e.at = at;
  e.node = node;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::revive_node_at(sim::Duration at, net::NodeId node) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kReviveNode;
  e.at = at;
  e.node = node;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition_at(sim::Duration at,
                                   std::vector<net::NodeId> side_a,
                                   std::vector<net::NodeId> side_b) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.at = at;
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal_partition_at(sim::Duration at,
                                        std::vector<net::NodeId> side_a,
                                        std::vector<net::NodeId> side_b) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kHealPartition;
  e.at = at;
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition_window(sim::Duration at, sim::Duration down_for,
                                       std::vector<net::NodeId> side_a,
                                       std::vector<net::NodeId> side_b) {
  partition_at(at, side_a, side_b);
  return heal_partition_at(at + down_for, std::move(side_a),
                           std::move(side_b));
}

FaultPlan& FaultPlan::random_link_flaps(const net::Network& network,
                                        std::size_t count,
                                        sim::Duration window_start,
                                        sim::Duration window_end,
                                        sim::Duration min_down,
                                        sim::Duration max_down) {
  PSF_CHECK(network.link_count() > 0);
  PSF_CHECK(window_end.nanos() > window_start.nanos());
  PSF_CHECK(max_down.nanos() >= min_down.nanos());
  util::Rng rng(seed_ ^ 0xF1A95EEDULL);
  for (std::size_t i = 0; i < count; ++i) {
    const net::LinkId link{static_cast<std::uint32_t>(
        rng.uniform_u64(0, network.link_count() - 1))};
    const sim::Duration at = sim::Duration::from_nanos(
        rng.uniform_i64(window_start.nanos(), window_end.nanos() - 1));
    const sim::Duration down = sim::Duration::from_nanos(
        rng.uniform_i64(min_down.nanos(), max_down.nanos()));
    flap_link(link, at, down);
  }
  return *this;
}

void FaultPlan::arm(Framework& fw) const {
  fw.runtime().set_fault_seed(seed_ ^ 0x10555EEDULL);
  // Stable-sort by time so same-time events fire in insertion order — the
  // simulator breaks timestamp ties by schedule order, so sorting here makes
  // the fire order independent of how the plan was built up.
  std::vector<const FaultEvent*> ordered;
  ordered.reserve(events_.size());
  for (const FaultEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->at.nanos() < b->at.nanos();
                   });
  for (const FaultEvent* ep : ordered) {
    const FaultEvent e = *ep;  // schedule an owned copy
    fw.simulator().schedule(e.at, [&fw, e] {
      runtime::NetworkMonitor& monitor = fw.monitor();
      switch (e.kind) {
        case FaultEvent::Kind::kFailLink:
          monitor.fail_link(e.link);
          break;
        case FaultEvent::Kind::kHealLink:
          monitor.heal_link(e.link);
          break;
        case FaultEvent::Kind::kSetLinkLoss:
          monitor.set_link_loss(e.link, e.loss);
          break;
        case FaultEvent::Kind::kCrashNode:
          fw.crash_node(e.node);
          break;
        case FaultEvent::Kind::kReviveNode:
          fw.revive_node(e.node);
          break;
        case FaultEvent::Kind::kPartition:
          monitor.partition(e.side_a, e.side_b);
          break;
        case FaultEvent::Kind::kHealPartition: {
          // Restore the cut: heal every down link crossing it. heal_link is
          // idempotent, so links failed by other events and already healed
          // are untouched; a link failed both by this partition and a
          // concurrent fail_link is healed here (document in DESIGN.md).
          auto in = [](const std::vector<net::NodeId>& set, net::NodeId n) {
            return std::find(set.begin(), set.end(), n) != set.end();
          };
          for (net::LinkId lid : fw.network().all_links()) {
            const net::Link& l = fw.network().link(lid);
            if (l.up) continue;
            const bool crosses = (in(e.side_a, l.a) && in(e.side_b, l.b)) ||
                                 (in(e.side_a, l.b) && in(e.side_b, l.a));
            if (crosses) monitor.heal_link(lid);
          }
          break;
        }
      }
    });
  }
}

std::string FaultPlan::to_string(const net::Network& network) const {
  auto link_name = [&network](net::LinkId lid) {
    const net::Link& l = network.link(lid);
    return network.node(l.a).name + "<->" + network.node(l.b).name;
  };
  auto side_name = [&network](const std::vector<net::NodeId>& side) {
    std::string out = "[";
    for (std::size_t i = 0; i < side.size(); ++i) {
      if (i > 0) out += " ";
      out += network.node(side[i]).name;
    }
    return out + "]";
  };
  std::vector<const FaultEvent*> ordered;
  ordered.reserve(events_.size());
  for (const FaultEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->at.nanos() < b->at.nanos();
                   });
  std::ostringstream oss;
  oss << "FaultPlan(seed=" << seed_ << ", " << events_.size() << " events)\n";
  for (const FaultEvent* ep : ordered) {
    const FaultEvent& e = *ep;
    oss << "  @" << e.at.millis() << "ms ";
    switch (e.kind) {
      case FaultEvent::Kind::kFailLink:
        oss << "fail-link " << link_name(e.link);
        break;
      case FaultEvent::Kind::kHealLink:
        oss << "heal-link " << link_name(e.link);
        break;
      case FaultEvent::Kind::kSetLinkLoss:
        oss << "set-loss " << link_name(e.link) << " " << e.loss;
        break;
      case FaultEvent::Kind::kCrashNode:
        oss << "crash-node " << network.node(e.node).name;
        break;
      case FaultEvent::Kind::kReviveNode:
        oss << "revive-node " << network.node(e.node).name;
        break;
      case FaultEvent::Kind::kPartition:
        oss << "partition " << side_name(e.side_a) << " | "
            << side_name(e.side_b);
        break;
      case FaultEvent::Kind::kHealPartition:
        oss << "heal-partition " << side_name(e.side_a) << " | "
            << side_name(e.side_b);
        break;
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace psf::core
