// Framework facade — owns the full stack (simulator, network, Smock
// runtime, lookup service, generic server, network monitor) and exposes the
// paper's Fig. 1 timeline as a handful of calls:
//
//   Framework fw(std::move(network));
//   fw.register_service(mail::mail_registration(home), mail::mail_translator());
//   auto proxy = fw.make_proxy(client_node, "SecureMail", request_defaults);
//   proxy->invoke(...);          // binds on first use: plan + deploy
//   fw.run();                    // drive the simulation
//
// enable_adaptation() wires the §6 extension: network-monitor events
// re-translate the service's environment view so subsequent (re)planning
// sees fresh properties.
#pragma once

#include <memory>
#include <string>

#include "net/network.hpp"
#include "runtime/generic.hpp"
#include "runtime/lookup.hpp"
#include "runtime/monitor.hpp"
#include "runtime/smock.hpp"
#include "sim/simulator.hpp"

namespace psf::core {

struct FrameworkOptions {
  // Hosts for the infrastructure services; default to node 0.
  net::NodeId lookup_node{0};
  net::NodeId server_node{0};
};

class Framework {
 public:
  explicit Framework(net::Network network, FrameworkOptions options = {});

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return network_; }
  runtime::SmockRuntime& runtime() { return runtime_; }
  runtime::LookupService& lookup() { return lookup_; }
  runtime::GenericServer& server() { return server_; }
  runtime::NetworkMonitor& monitor() { return monitor_; }

  // Registers a service and drives the simulator until registration (and
  // initial placements) complete.
  util::Status register_service(
      runtime::ServiceRegistration registration,
      std::shared_ptr<const planner::PropertyTranslator> translator);

  std::unique_ptr<runtime::GenericProxy> make_proxy(
      net::NodeId client_node, const std::string& service,
      planner::PlanRequest defaults);

  // Re-translate `service`'s environment whenever the monitor reports a
  // change, so later planning sees current properties.
  void enable_adaptation(const std::string& service);

  // Fault injection: crashes every instance on `node` and fires a
  // kNodeFailure monitor event (which a RedeploymentManager turns into
  // recovery). Returns the lost instance ids.
  std::vector<runtime::RuntimeInstanceId> fail_node(net::NodeId node);

  // Simulation drivers.
  std::size_t run() { return sim_.run(); }
  std::size_t run_for(sim::Duration d) {
    return sim_.run_until(sim_.now() + d);
  }

  // Steps the simulation until `done()` holds, the event queue drains, or
  // `max` simulated time elapses — required whenever periodic activity
  // (coherence timers, monitors) keeps the queue permanently non-empty.
  bool run_until_condition(const std::function<bool()>& done,
                           sim::Duration max) {
    const sim::Time deadline = sim_.now() + max;
    while (!done()) {
      if (sim_.now() > deadline) return done();
      if (!sim_.step()) return done();
    }
    return true;
  }

 private:
  net::Network network_;
  sim::Simulator sim_;
  runtime::SmockRuntime runtime_;
  runtime::LookupService lookup_;
  runtime::GenericServer server_;
  runtime::NetworkMonitor monitor_;
};

}  // namespace psf::core
