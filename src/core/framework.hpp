// Framework facade — owns the full stack (simulator, network, Smock
// runtime, lookup service, generic server, network monitor) and exposes the
// paper's Fig. 1 timeline as a handful of calls:
//
//   Framework fw(std::move(network));
//   fw.register_service(mail::mail_registration(home), mail::mail_translator());
//   auto proxy = fw.make_proxy(client_node, "SecureMail", request_defaults);
//   proxy->invoke(...);          // binds on first use: plan + deploy
//   fw.run();                    // drive the simulation
//
// enable_adaptation() wires the §6 extension: network-monitor events
// re-translate the service's environment view so subsequent (re)planning
// sees fresh properties.
#pragma once

#include <memory>
#include <string>

#include "net/network.hpp"
#include "runtime/generic.hpp"
#include "runtime/lease.hpp"
#include "runtime/lookup.hpp"
#include "runtime/sharded_lookup.hpp"
#include "runtime/monitor.hpp"
#include "runtime/retry.hpp"
#include "runtime/smock.hpp"
#include "sim/simulator.hpp"

namespace psf::core {

struct FrameworkOptions {
  // Hosts for the infrastructure services; default to node 0.
  net::NodeId lookup_node{0};
  net::NodeId server_node{0};
  // When non-empty, the lookup registry is sharded over these hosts (the
  // first entry supersedes lookup_node as shard 0, the registry that
  // register_service advertises into). Shard membership changes invalidate
  // cached access plans through the server's epoch mechanism.
  std::vector<net::NodeId> lookup_shard_hosts;
};

class Framework {
 public:
  explicit Framework(net::Network network, FrameworkOptions options = {});

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return network_; }
  runtime::SmockRuntime& runtime() { return runtime_; }
  // Shard 0 — the registry services advertise into; the historical
  // single-registry surface.
  runtime::LookupService& lookup() { return sharded_lookup_.shard(0); }
  runtime::ShardedLookupService& sharded_lookup() { return sharded_lookup_; }
  runtime::GenericServer& server() { return server_; }
  runtime::NetworkMonitor& monitor() { return monitor_; }

  // Registers a service and drives the simulator until registration (and
  // initial placements) complete.
  util::Status register_service(
      runtime::ServiceRegistration registration,
      std::shared_ptr<const planner::PropertyTranslator> translator);

  std::unique_ptr<runtime::GenericProxy> make_proxy(
      net::NodeId client_node, const std::string& service,
      planner::PlanRequest defaults);

  // Like make_proxy, but the proxy resolves through the sharded registry:
  // queries go to the client's nearest shard and forwarding legs are
  // charged on the fabric. Equivalent to make_proxy with one shard.
  std::unique_ptr<runtime::GenericProxy> make_sharded_proxy(
      net::NodeId client_node, const std::string& service,
      planner::PlanRequest defaults);

  // Re-translate `service`'s environment whenever the monitor reports a
  // change, so later planning sees current properties.
  void enable_adaptation(const std::string& service);

  // Fault injection, oracle flavor: crashes every instance on `node`, marks
  // the node down, and immediately fires a kNodeFailure monitor event (the
  // system is *told* about the failure). Returns the lost instance ids.
  std::vector<runtime::RuntimeInstanceId> fail_node(net::NodeId node);

  // Fault injection, silent flavor: crashes the instances and marks the
  // node down, but reports nothing — the failure must be *detected* (lease
  // expiry via enable_failure_detection) before the adaptation chain runs.
  std::vector<runtime::RuntimeInstanceId> crash_node(net::NodeId node);

  // Brings a crashed node back up (its instances stay dead — recovery
  // redeploys). With failure detection running, the node's next heartbeat
  // renews its lease and reactivates it.
  void revive_node(net::NodeId node);

  // Starts Jini-style lease-based failure detection: every current node
  // holds a lease with the lookup service, renewed by heartbeats on the
  // simulated fabric, and expiries fire the monitor's observer chain. Call
  // AFTER register_service (the heartbeat timers keep the event queue
  // non-empty, so use run_for/run_until_condition afterwards, never run()).
  runtime::LeaseManager& enable_failure_detection(
      runtime::LeaseParams params = {});

  // Non-null once enable_failure_detection has run.
  runtime::LeaseManager* lease_manager() { return lease_.get(); }

  // Shared client-resilience counters; pass to GenericProxy::enable_retries
  // so every proxy in this world accumulates into one place.
  runtime::RetryTelemetry& retry_telemetry() { return retry_telemetry_; }

  // Simulation drivers.
  std::size_t run() { return sim_.run(); }
  std::size_t run_for(sim::Duration d) {
    return sim_.run_until(sim_.now() + d);
  }

  // Steps the simulation until `done()` holds, the event queue drains, or
  // `max` simulated time elapses — required whenever periodic activity
  // (coherence timers, monitors) keeps the queue permanently non-empty.
  bool run_until_condition(const std::function<bool()>& done,
                           sim::Duration max) {
    const sim::Time deadline = sim_.now() + max;
    while (!done()) {
      if (sim_.now() > deadline) return done();
      if (!sim_.step()) return done();
    }
    return true;
  }

 private:
  net::Network network_;
  sim::Simulator sim_;
  runtime::SmockRuntime runtime_;
  runtime::ShardedLookupService sharded_lookup_;
  runtime::GenericServer server_;
  runtime::NetworkMonitor monitor_;
  std::unique_ptr<runtime::LeaseManager> lease_;
  runtime::RetryTelemetry retry_telemetry_;
};

}  // namespace psf::core
