#include "net/network.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace psf::net {

Network::Network(const Network& other)
    : nodes_(other.nodes_),
      links_(other.links_),
      adjacency_(other.adjacency_) {}

Network& Network::operator=(const Network& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    links_ = other.links_;
    adjacency_ = other.adjacency_;
    invalidate_cache();
  }
  return *this;
}

Network::Network(Network&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      links_(std::move(other.links_)),
      adjacency_(std::move(other.adjacency_)) {
  other.invalidate_cache();
}

Network& Network::operator=(Network&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    links_ = std::move(other.links_);
    adjacency_ = std::move(other.adjacency_);
    invalidate_cache();
    other.invalidate_cache();
  }
  return *this;
}

NodeId Network::add_node(std::string name, double cpu_capacity,
                         Credentials credentials) {
  PSF_CHECK_MSG(cpu_capacity > 0.0, "node cpu capacity must be positive");
  NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  Node n;
  n.id = id;
  n.name = std::move(name);
  n.cpu_capacity = cpu_capacity;
  n.credentials = std::move(credentials);
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  invalidate_cache();
  return id;
}

LinkId Network::add_link(NodeId a, NodeId b, double bandwidth_bps,
                         sim::Duration latency, Credentials credentials) {
  PSF_CHECK(a.valid() && a.value < nodes_.size());
  PSF_CHECK(b.valid() && b.value < nodes_.size());
  PSF_CHECK_MSG(a != b, "self links are not modeled");
  PSF_CHECK_MSG(bandwidth_bps > 0.0, "link bandwidth must be positive");
  PSF_CHECK_MSG(latency.nanos() >= 0, "negative link latency");
  LinkId id{static_cast<std::uint32_t>(links_.size())};
  Link l;
  l.id = id;
  l.a = a;
  l.b = b;
  l.bandwidth_bps = bandwidth_bps;
  l.latency = latency;
  l.credentials = std::move(credentials);
  links_.push_back(std::move(l));
  adjacency_[a.value].push_back(id);
  adjacency_[b.value].push_back(id);
  invalidate_cache();
  return id;
}

Node& Network::node(NodeId id) {
  PSF_CHECK(id.valid() && id.value < nodes_.size());
  return nodes_[id.value];
}

const Node& Network::node(NodeId id) const {
  PSF_CHECK(id.valid() && id.value < nodes_.size());
  return nodes_[id.value];
}

Link& Network::link(LinkId id) {
  PSF_CHECK(id.valid() && id.value < links_.size());
  return links_[id.value];
}

const Link& Network::link(LinkId id) const {
  PSF_CHECK(id.valid() && id.value < links_.size());
  return links_[id.value];
}

std::optional<NodeId> Network::find_node(const std::string& name) const {
  for (const Node& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return std::nullopt;
}

const std::vector<LinkId>& Network::links_of(NodeId n) const {
  PSF_CHECK(n.valid() && n.value < adjacency_.size());
  return adjacency_[n.value];
}

std::optional<LinkId> Network::link_between(NodeId a, NodeId b) const {
  for (LinkId lid : links_of(a)) {
    const Link& l = links_[lid.value];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return lid;
  }
  return std::nullopt;
}

std::optional<Route> Network::route(NodeId from, NodeId to) const {
  PSF_CHECK(from.valid() && from.value < nodes_.size());
  PSF_CHECK(to.valid() && to.value < nodes_.size());
  if (!nodes_[from.value].up || !nodes_[to.value].up) return std::nullopt;
  if (from == to) return Route{};

  struct State {
    std::int64_t latency_ns;
    std::uint32_t hops;
    NodeId node;
    bool operator>(const State& o) const {
      if (latency_ns != o.latency_ns) return latency_ns > o.latency_ns;
      if (hops != o.hops) return hops > o.hops;
      return node.value > o.node.value;
    }
  };

  constexpr std::int64_t kInf = INT64_MAX;
  std::vector<std::int64_t> best(nodes_.size(), kInf);
  std::vector<std::uint32_t> best_hops(nodes_.size(), UINT32_MAX);
  std::vector<LinkId> via(nodes_.size());
  std::priority_queue<State, std::vector<State>, std::greater<State>> pq;

  best[from.value] = 0;
  best_hops[from.value] = 0;
  pq.push(State{0, 0, from});

  while (!pq.empty()) {
    const State s = pq.top();
    pq.pop();
    if (s.latency_ns > best[s.node.value] ||
        (s.latency_ns == best[s.node.value] &&
         s.hops > best_hops[s.node.value])) {
      continue;
    }
    if (s.node == to) break;
    for (LinkId lid : adjacency_[s.node.value]) {
      const Link& l = links_[lid.value];
      if (!l.up) continue;
      const NodeId next = l.other(s.node);
      if (!nodes_[next.value].up) continue;
      const std::int64_t cand = s.latency_ns + l.latency.nanos();
      const std::uint32_t cand_hops = s.hops + 1;
      if (cand < best[next.value] ||
          (cand == best[next.value] && cand_hops < best_hops[next.value])) {
        best[next.value] = cand;
        best_hops[next.value] = cand_hops;
        via[next.value] = lid;
        pq.push(State{cand, cand_hops, next});
      }
    }
  }

  if (best[to.value] == kInf) return std::nullopt;

  Route r;
  r.total_latency = sim::Duration::from_nanos(best[to.value]);
  r.links.reserve(best_hops[to.value]);
  NodeId cur = to;
  while (cur != from) {
    const LinkId lid = via[cur.value];
    r.links.push_back(lid);
    r.bottleneck_bandwidth_bps =
        std::min(r.bottleneck_bandwidth_bps, links_[lid.value].bandwidth_bps);
    cur = links_[lid.value].other(cur);
  }
  std::reverse(r.links.begin(), r.links.end());
  return r;
}

const Route* Network::cached_route(NodeId from, NodeId to) const {
  PSF_CHECK(from.valid() && from.value < nodes_.size());
  PSF_CHECK(to.valid() && to.value < nodes_.size());
  return &(*route_row(from))[to.value];
}

const std::vector<Route>* Network::route_row(NodeId from) const {
  // Fast path: cache generation valid and the row already published. The
  // acquire on cache_valid_ pairs with the release in the slow path below,
  // making the row_slots_ array itself visible; the acquire on the slot
  // makes the row contents visible.
  if (cache_valid_.load(std::memory_order_acquire)) {
    const std::vector<Route>* row =
        row_slots_[from.value].row.load(std::memory_order_acquire);
    if (row != nullptr) return row;
  }

  std::lock_guard<std::mutex> lock(route_mutex_);
  if (!cache_valid_.load(std::memory_order_relaxed)) {
    row_slots_ = std::make_unique<RouteRowSlot[]>(nodes_.size());
    row_storage_.clear();
    rows_materialized_.store(0, std::memory_order_relaxed);
    cache_valid_.store(true, std::memory_order_release);
  }
  RouteRowSlot& slot = row_slots_[from.value];
  if (const std::vector<Route>* row =
          slot.row.load(std::memory_order_relaxed)) {
    return row;  // lost the race to another materializer
  }
  auto row = std::make_unique<std::vector<Route>>(compute_route_row(from));
  const std::vector<Route>* published = row.get();
  row_storage_.push_back(std::move(row));
  rows_materialized_.fetch_add(1, std::memory_order_relaxed);
  slot.row.store(published, std::memory_order_release);
  return published;
}

std::size_t Network::route_rows_materialized() const {
  return rows_materialized_.load(std::memory_order_relaxed);
}

std::vector<Route> Network::compute_route_row(NodeId from) const {
  const std::size_t n = nodes_.size();
  Route unreachable;
  unreachable.total_latency = sim::Duration::from_nanos(INT64_MAX / 2);
  unreachable.bottleneck_bandwidth_bps = 0.0;
  std::vector<Route> row(n, unreachable);

  if (!nodes_[from.value].up) return row;

  // One full Dijkstra per source (identical metric and tie-breaks to
  // route(), minus the destination early-exit) instead of one truncated
  // Dijkstra per PAIR — precomputing a 100-node Waxman drops from n^2 to n
  // searches.
  struct State {
    std::int64_t latency_ns;
    std::uint32_t hops;
    NodeId node;
    bool operator>(const State& o) const {
      if (latency_ns != o.latency_ns) return latency_ns > o.latency_ns;
      if (hops != o.hops) return hops > o.hops;
      return node.value > o.node.value;
    }
  };

  constexpr std::int64_t kInf = INT64_MAX;
  std::vector<std::int64_t> best(n, kInf);
  std::vector<std::uint32_t> best_hops(n, UINT32_MAX);
  std::vector<LinkId> via(n);
  std::priority_queue<State, std::vector<State>, std::greater<State>> pq;

  best[from.value] = 0;
  best_hops[from.value] = 0;
  pq.push(State{0, 0, from});

  while (!pq.empty()) {
    const State s = pq.top();
    pq.pop();
    if (s.latency_ns > best[s.node.value] ||
        (s.latency_ns == best[s.node.value] &&
         s.hops > best_hops[s.node.value])) {
      continue;
    }
    for (LinkId lid : adjacency_[s.node.value]) {
      const Link& l = links_[lid.value];
      if (!l.up) continue;
      const NodeId next = l.other(s.node);
      if (!nodes_[next.value].up) continue;
      const std::int64_t cand = s.latency_ns + l.latency.nanos();
      const std::uint32_t cand_hops = s.hops + 1;
      if (cand < best[next.value] ||
          (cand == best[next.value] && cand_hops < best_hops[next.value])) {
        best[next.value] = cand;
        best_hops[next.value] = cand_hops;
        via[next.value] = lid;
        pq.push(State{cand, cand_hops, next});
      }
    }
  }

  for (const Node& to : nodes_) {
    if (to.id == from) {
      row[to.id.value] = Route{};
      continue;
    }
    if (!to.up || best[to.id.value] == kInf) continue;  // keep the marker
    Route r;
    r.total_latency = sim::Duration::from_nanos(best[to.id.value]);
    r.links.reserve(best_hops[to.id.value]);
    NodeId cur = to.id;
    while (cur != from) {
      const LinkId lid = via[cur.value];
      r.links.push_back(lid);
      r.bottleneck_bandwidth_bps = std::min(r.bottleneck_bandwidth_bps,
                                            links_[lid.value].bandwidth_bps);
      cur = links_[lid.value].other(cur);
    }
    std::reverse(r.links.begin(), r.links.end());
    row[to.id.value] = std::move(r);
  }
  return row;
}

void Network::precompute_routes() const {
  for (const Node& from : nodes_) route_row(from.id);
}

void Network::set_node_up(NodeId id, bool up) {
  Node& n = node(id);
  if (n.up == up) return;
  n.up = up;
  invalidate_cache();
}

void Network::set_link_up(LinkId id, bool up) {
  Link& l = link(id);
  if (l.up == up) return;
  l.up = up;
  invalidate_cache();
}

void Network::set_link_loss(LinkId id, double loss) {
  PSF_CHECK_MSG(loss >= 0.0 && loss <= 1.0, "loss probability out of [0,1]");
  link(id).loss = loss;
  // Loss does not change route selection, but cached Route pointers are the
  // public contract for "topology snapshot"; refresh them anyway so readers
  // re-observe the link.
  invalidate_cache();
}

void Network::set_link_bandwidth(LinkId id, double bandwidth_bps) {
  PSF_CHECK_MSG(bandwidth_bps > 0.0, "link bandwidth must be positive");
  link(id).bandwidth_bps = bandwidth_bps;
  invalidate_cache();
}

void Network::set_link_latency(LinkId id, sim::Duration latency) {
  PSF_CHECK_MSG(latency.nanos() >= 0, "negative link latency");
  link(id).latency = latency;
  invalidate_cache();
}

std::vector<NodeId> Network::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) out.push_back(n.id);
  return out;
}

std::vector<LinkId> Network::all_links() const {
  std::vector<LinkId> out;
  out.reserve(links_.size());
  for (const Link& l : links_) out.push_back(l.id);
  return out;
}

std::string Network::to_string() const {
  std::ostringstream oss;
  oss << "Network(" << nodes_.size() << " nodes, " << links_.size()
      << " links)\n";
  for (const Node& n : nodes_) {
    oss << "  node " << n.id.value << " '" << n.name
        << "' cpu=" << n.cpu_capacity << " " << n.credentials.to_string()
        << (n.up ? "" : " DOWN") << "\n";
  }
  for (const Link& l : links_) {
    oss << "  link " << l.id.value << " " << nodes_[l.a.value].name << " <-> "
        << nodes_[l.b.value].name << " bw=" << l.bandwidth_bps / 1e6
        << "Mbps lat=" << l.latency.millis() << "ms "
        << l.credentials.to_string() << (l.up ? "" : " DOWN");
    if (l.loss > 0.0) oss << " loss=" << l.loss;
    oss << "\n";
  }
  return oss.str();
}

void Network::invalidate_cache() {
  // Mutations are not concurrent with reads (unchanged contract), but take
  // the mutex anyway so a mutation can never tear a row mid-materialization.
  std::lock_guard<std::mutex> lock(route_mutex_);
  cache_valid_.store(false, std::memory_order_release);
  row_slots_.reset();
  row_storage_.clear();
  rows_materialized_.store(0, std::memory_order_relaxed);
}

}  // namespace psf::net
