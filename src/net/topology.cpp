#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace psf::net {

namespace {

double distance(const Node& a, const Node& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

sim::Duration latency_for_distance(double dist, double latency_per_unit_us) {
  // Floor of 10us models switching overhead even for co-located nodes.
  return sim::Duration::from_micros(std::max(10.0, dist * latency_per_unit_us));
}

// Connects any disconnected components by linking each component's
// lowest-id node to its geometrically nearest node in the visited set.
// Deterministic, and geometrically sensible for Waxman graphs.
void ensure_connected(Network& net, double min_bw, double max_bw,
                      double latency_per_unit_us, util::Rng& rng) {
  const std::size_t n = net.node_count();
  if (n <= 1) return;
  std::vector<std::uint32_t> comp(n, UINT32_MAX);
  std::uint32_t num_comps = 0;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (comp[start] != UINT32_MAX) continue;
    // BFS flood.
    std::vector<NodeId> frontier{NodeId{start}};
    comp[start] = num_comps;
    while (!frontier.empty()) {
      NodeId cur = frontier.back();
      frontier.pop_back();
      for (LinkId lid : net.links_of(cur)) {
        NodeId next = net.link(lid).other(cur);
        if (comp[next.value] == UINT32_MAX) {
          comp[next.value] = num_comps;
          frontier.push_back(next);
        }
      }
    }
    ++num_comps;
  }
  if (num_comps == 1) return;

  // Attach every non-zero component to the nearest node of component 0's
  // growing hull.
  std::vector<bool> attached(num_comps, false);
  attached[0] = true;
  for (std::uint32_t c = 1; c < num_comps; ++c) {
    NodeId best_from{}, best_to{};
    double best_dist = 1e300;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (comp[i] != c) continue;
      for (std::uint32_t j = 0; j < n; ++j) {
        if (!attached[comp[j]]) continue;
        const double d = distance(net.node(NodeId{i}), net.node(NodeId{j}));
        if (d < best_dist) {
          best_dist = d;
          best_from = NodeId{i};
          best_to = NodeId{j};
        }
      }
    }
    PSF_CHECK(best_from.valid() && best_to.valid());
    const double bw = rng.uniform(min_bw, max_bw);
    net.add_link(best_from, best_to, bw,
                 latency_for_distance(best_dist, latency_per_unit_us));
    attached[c] = true;
  }
}

void place_nodes(Network& net, std::size_t count, double plane_size,
                 double min_cpu, double max_cpu, const std::string& prefix,
                 util::Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const double cpu = rng.uniform(min_cpu, max_cpu);
    NodeId id = net.add_node(prefix + std::to_string(i), cpu);
    Node& node = net.node(id);
    node.x = rng.uniform(0.0, plane_size);
    node.y = rng.uniform(0.0, plane_size);
  }
}

}  // namespace

Network generate_waxman(const WaxmanParams& params, util::Rng& rng) {
  PSF_CHECK(params.num_nodes >= 1);
  PSF_CHECK(params.alpha > 0.0 && params.beta > 0.0);
  Network net;
  place_nodes(net, params.num_nodes, params.plane_size, params.min_cpu,
              params.max_cpu, "w", rng);

  const double max_dist = params.plane_size * std::sqrt(2.0);
  for (std::uint32_t i = 0; i < params.num_nodes; ++i) {
    for (std::uint32_t j = i + 1; j < params.num_nodes; ++j) {
      const double d = distance(net.node(NodeId{i}), net.node(NodeId{j}));
      const double p = params.alpha * std::exp(-d / (params.beta * max_dist));
      if (rng.bernoulli(p)) {
        const double bw =
            rng.uniform(params.min_bandwidth_bps, params.max_bandwidth_bps);
        net.add_link(NodeId{i}, NodeId{j}, bw,
                     latency_for_distance(d, params.latency_per_unit_us));
      }
    }
  }
  ensure_connected(net, params.min_bandwidth_bps, params.max_bandwidth_bps,
                   params.latency_per_unit_us, rng);
  return net;
}

Network generate_barabasi_albert(const BarabasiAlbertParams& params,
                                 util::Rng& rng) {
  PSF_CHECK(params.num_nodes >= 2);
  PSF_CHECK(params.links_per_new_node >= 1);
  Network net;
  place_nodes(net, params.num_nodes, params.plane_size, params.min_cpu,
              params.max_cpu, "ba", rng);

  // Endpoint multiset for preferential attachment: each link contributes
  // both endpoints, so a draw is proportional to degree.
  std::vector<std::uint32_t> endpoints;

  // Seed clique among the first m+1 nodes.
  const std::size_t m = std::min(params.links_per_new_node,
                                 params.num_nodes - 1);
  for (std::uint32_t i = 0; i <= m; ++i) {
    for (std::uint32_t j = i + 1; j <= m; ++j) {
      const double d = distance(net.node(NodeId{i}), net.node(NodeId{j}));
      const double bw =
          rng.uniform(params.min_bandwidth_bps, params.max_bandwidth_bps);
      net.add_link(NodeId{i}, NodeId{j}, bw,
                   latency_for_distance(d, params.latency_per_unit_us));
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }

  for (std::uint32_t v = static_cast<std::uint32_t>(m) + 1;
       v < params.num_nodes; ++v) {
    std::vector<std::uint32_t> chosen;
    while (chosen.size() < m) {
      const std::uint32_t candidate =
          endpoints[rng.uniform_u64(0, endpoints.size() - 1)];
      if (candidate == v) continue;
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      chosen.push_back(candidate);
    }
    for (std::uint32_t u : chosen) {
      const double d = distance(net.node(NodeId{v}), net.node(NodeId{u}));
      const double bw =
          rng.uniform(params.min_bandwidth_bps, params.max_bandwidth_bps);
      net.add_link(NodeId{v}, NodeId{u}, bw,
                   latency_for_distance(d, params.latency_per_unit_us));
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  return net;
}

Network generate_hierarchical(const HierarchicalParams& params,
                              util::Rng& rng) {
  // Generate the AS-level skeleton first, then expand each AS node into a
  // router-level Waxman graph and rewire AS-level links to random gateway
  // routers in each AS.
  Network as_graph = generate_waxman(params.as_level, rng);

  Network net;
  std::vector<std::vector<NodeId>> as_members(as_graph.node_count());

  for (std::uint32_t as = 0; as < as_graph.node_count(); ++as) {
    util::Rng sub = rng.fork();
    Network routers = generate_waxman(params.router_level, sub);
    // Copy router subgraph into the flat network, offsetting positions so
    // each AS occupies its own region of the plane.
    const Node& as_node = as_graph.node(NodeId{as});
    std::vector<NodeId> mapping;
    mapping.reserve(routers.node_count());
    for (std::uint32_t r = 0; r < routers.node_count(); ++r) {
      const Node& src = routers.node(NodeId{r});
      NodeId id = net.add_node(
          "as" + std::to_string(as) + ".r" + std::to_string(r),
          src.cpu_capacity);
      Node& dst = net.node(id);
      dst.x = as_node.x + src.x / 10.0;
      dst.y = as_node.y + src.y / 10.0;
      dst.credentials.set("as", static_cast<std::int64_t>(as));
      mapping.push_back(id);
      as_members[as].push_back(id);
    }
    for (LinkId lid : routers.all_links()) {
      const Link& l = routers.link(lid);
      net.add_link(mapping[l.a.value], mapping[l.b.value], l.bandwidth_bps,
                   l.latency);
    }
  }

  for (LinkId lid : as_graph.all_links()) {
    const Link& l = as_graph.link(lid);
    const auto& from_members = as_members[l.a.value];
    const auto& to_members = as_members[l.b.value];
    const NodeId gw_a =
        from_members[rng.uniform_u64(0, from_members.size() - 1)];
    const NodeId gw_b = to_members[rng.uniform_u64(0, to_members.size() - 1)];
    net.add_link(gw_a, gw_b,
                 l.bandwidth_bps * params.inter_as_bandwidth_scale,
                 l.latency * params.inter_as_latency_scale);
  }
  return net;
}

}  // namespace psf::net
