// Application-independent credentials attached to network nodes and links.
//
// The paper (§3.3) models the network as nodes/links carrying resource
// characteristics plus credentials that are *not* performance related (e.g.
// administrative domain, physical security of a link). A service-supplied
// translator — or the trust-management engine of §6 — later maps these into
// service-specific properties such as Confidentiality and TrustLevel.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

namespace psf::net {

using CredentialValue = std::variant<bool, std::int64_t, double, std::string>;

std::string credential_value_to_string(const CredentialValue& v);

// An ordered map keeps iteration (and thus planner behaviour) deterministic.
class Credentials {
 public:
  void set(std::string name, CredentialValue value) {
    values_[std::move(name)] = std::move(value);
  }

  bool has(const std::string& name) const {
    return values_.find(name) != values_.end();
  }

  std::optional<CredentialValue> get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  bool get_bool(const std::string& name, bool fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  const std::map<std::string, CredentialValue>& all() const { return values_; }
  bool empty() const { return values_.empty(); }

  std::string to_string() const;

 private:
  std::map<std::string, CredentialValue> values_;
};

}  // namespace psf::net
