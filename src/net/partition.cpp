// detlint:ordered-output — partition assignment feeds region numbering and merge order.
#include "net/partition.hpp"

#include <algorithm>
#include <deque>

namespace psf::net {

namespace {

// BFS order from node 0, appending further components from the lowest
// unvisited id — a deterministic stream that keeps neighbors close together
// so the greedy pass sees placed neighbors early.
std::vector<NodeId> stream_order(const Network& network) {
  const std::size_t n = network.node_count();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  for (std::uint32_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::deque<NodeId> frontier{NodeId{start}};
    seen[start] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      order.push_back(u);
      for (LinkId lid : network.links_of(u)) {
        const NodeId v = network.link(lid).other(u);
        if (!seen[v.value]) {
          seen[v.value] = true;
          frontier.push_back(v);
        }
      }
    }
  }
  return order;
}

}  // namespace

GraphPartition partition_graph(const Network& network, std::size_t num_parts) {
  const std::size_t n = network.node_count();
  PSF_CHECK_MSG(n > 0, "cannot partition an empty network");
  num_parts = std::clamp<std::size_t>(num_parts, 1, n);

  GraphPartition part;
  part.num_parts = num_parts;
  part.part_of_node.assign(n, 0);
  part.part_sizes.assign(num_parts, 0);

  const std::size_t capacity = (n + num_parts - 1) / num_parts;
  constexpr PartId kUnassigned = std::numeric_limits<PartId>::max();
  std::vector<PartId> assign(n, kUnassigned);

  // Streaming greedy assignment.
  std::vector<std::size_t> score(num_parts);
  for (const NodeId u : stream_order(network)) {
    std::fill(score.begin(), score.end(), 0);
    for (LinkId lid : network.links_of(u)) {
      const NodeId v = network.link(lid).other(u);
      if (assign[v.value] != kUnassigned) ++score[assign[v.value]];
    }
    PartId best = kUnassigned;
    for (PartId r = 0; r < num_parts; ++r) {
      if (part.part_sizes[r] >= capacity) continue;
      if (best == kUnassigned || score[r] > score[best] ||
          (score[r] == score[best] &&
           part.part_sizes[r] < part.part_sizes[best])) {
        best = r;
      }
    }
    PSF_CHECK(best != kUnassigned);  // capacities sum to >= n
    assign[u.value] = best;
    ++part.part_sizes[best];
  }

  // One refinement sweep: move a boundary node to the neighboring part where
  // it has strictly more neighbors, when balance permits. Nodes are visited
  // in id order, so the sweep is deterministic.
  for (std::uint32_t u = 0; u < n; ++u) {
    const PartId cur = assign[u];
    if (part.part_sizes[cur] <= 1) continue;
    std::fill(score.begin(), score.end(), 0);
    for (LinkId lid : network.links_of(NodeId{u})) {
      const NodeId v = network.link(lid).other(NodeId{u});
      ++score[assign[v.value]];
    }
    PartId target = cur;
    for (PartId r = 0; r < num_parts; ++r) {
      if (r == cur || part.part_sizes[r] >= capacity) continue;
      if (score[r] > score[target]) target = r;
    }
    if (target != cur) {
      assign[u] = target;
      --part.part_sizes[cur];
      ++part.part_sizes[target];
    }
  }

  part.part_of_node = std::move(assign);

  // Cut statistics. Fault state deliberately ignored (see header).
  for (LinkId lid : network.all_links()) {
    const Link& l = network.link(lid);
    if (part.part_of_node[l.a.value] == part.part_of_node[l.b.value]) {
      continue;
    }
    ++part.cut_links;
    part.min_cut_latency_ns =
        std::min(part.min_cut_latency_ns, l.latency.nanos());
  }
  return part;
}

}  // namespace psf::net
