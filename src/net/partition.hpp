// Shared graph-partitioning utility over net::Network.
//
// One deterministic algorithm, two consumers:
//  - the region-parallel simulation engine (sim::partition_network wraps
//    this and derives its conservative lookahead);
//  - the hierarchical planner (planner::ClusterIndex builds capacity-bounded
//    clusters, border nodes, and a quotient graph on top of it).
//
// The algorithm is the parameter-server streaming idiom: stream nodes in
// BFS order, assign each to the capacity-bounded part holding most of its
// already-placed neighbors, then run one boundary-refinement sweep moving
// nodes whose cut degree strictly improves. Fully deterministic: the same
// network (nodes, links) always yields the same partition.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/network.hpp"

namespace psf::net {

using PartId = std::uint32_t;

struct GraphPartition {
  std::vector<PartId> part_of_node;  // indexed by NodeId::value
  std::size_t num_parts = 1;
  std::vector<std::size_t> part_sizes;  // node count per part
  std::size_t cut_links = 0;
  // Minimum latency over links whose endpoints fall in different parts;
  // INT64_MAX when no link crosses parts. Fault state is ignored: a down
  // link still contributes, which keeps min-based bounds admissible when it
  // comes back up.
  std::int64_t min_cut_latency_ns = std::numeric_limits<std::int64_t>::max();

  PartId part_of(NodeId n) const { return part_of_node[n.value]; }
};

// Deterministic: same network (nodes, links, latencies) => same partition.
// num_parts is clamped to [1, node_count]. Parts are capacity-bounded at
// ceil(n / num_parts) nodes.
GraphPartition partition_graph(const Network& network, std::size_t num_parts);

}  // namespace psf::net
