#include "net/credential.hpp"

#include <sstream>

namespace psf::net {

std::string credential_value_to_string(const CredentialValue& v) {
  struct Visitor {
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      std::ostringstream oss;
      oss << d;
      return oss.str();
    }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v);
}

bool Credentials::get_bool(const std::string& name, bool fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  if (auto* b = std::get_if<bool>(&*v)) return *b;
  if (auto* i = std::get_if<std::int64_t>(&*v)) return *i != 0;
  return fallback;
}

std::int64_t Credentials::get_int(const std::string& name,
                                  std::int64_t fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  if (auto* i = std::get_if<std::int64_t>(&*v)) return *i;
  if (auto* d = std::get_if<double>(&*v)) return static_cast<std::int64_t>(*d);
  if (auto* b = std::get_if<bool>(&*v)) return *b ? 1 : 0;
  return fallback;
}

double Credentials::get_double(const std::string& name,
                               double fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  if (auto* d = std::get_if<double>(&*v)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&*v)) return static_cast<double>(*i);
  return fallback;
}

std::string Credentials::get_string(const std::string& name,
                                    const std::string& fallback) const {
  auto v = get(name);
  if (!v) return fallback;
  if (auto* s = std::get_if<std::string>(&*v)) return *s;
  return credential_value_to_string(*v);
}

std::string Credentials::to_string() const {
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) oss << ", ";
    first = false;
    oss << name << "=" << credential_value_to_string(value);
  }
  oss << "}";
  return oss.str();
}

}  // namespace psf::net
