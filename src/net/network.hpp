// Network graph model used by both the planner (resource/credential view)
// and the runtime (message cost model).
//
// Nodes carry CPU capacity (abstract "cpu units"/second; one unit ≈ the cost
// the spec's Behaviors express per request) and credentials. Links carry
// latency, bandwidth, and credentials (e.g. secure=true). Links are
// bidirectional, matching the paper's Fig. 5 topology.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/credential.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace psf::net {

struct NodeId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = UINT32_MAX;

  constexpr bool valid() const { return value != kInvalid; }
  constexpr bool operator==(const NodeId&) const = default;
  constexpr auto operator<=>(const NodeId&) const = default;
};

struct LinkId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = UINT32_MAX;

  constexpr bool valid() const { return value != kInvalid; }
  constexpr bool operator==(const LinkId&) const = default;
  constexpr auto operator<=>(const LinkId&) const = default;
};

struct Node {
  NodeId id;
  std::string name;
  double cpu_capacity = 1e6;   // cpu units per second
  double cpu_reserved = 0.0;   // planner reservations
  Credentials credentials;
  // Position in an abstract plane; set by topology generators (Waxman needs
  // distances), zero for hand-built topologies.
  double x = 0.0;
  double y = 0.0;
  // Fault state: a down node is skipped by routing and unusable for
  // placement. Mutate through Network::set_node_up so route caches refresh.
  bool up = true;

  double cpu_available() const { return cpu_capacity - cpu_reserved; }
};

struct Link {
  LinkId id;
  NodeId a;
  NodeId b;
  double bandwidth_bps = 100e6;
  sim::Duration latency = sim::Duration::zero();
  double bandwidth_reserved_bps = 0.0;  // planner reservations
  Credentials credentials;
  // Fault state: a down link carries no traffic and is skipped by routing;
  // `loss` is the per-message drop probability applied at each hop. Mutate
  // through Network::set_link_up / set_link_loss so route caches refresh.
  bool up = true;
  double loss = 0.0;

  double bandwidth_available_bps() const {
    return bandwidth_bps - bandwidth_reserved_bps;
  }

  NodeId other(NodeId n) const {
    PSF_CHECK(n == a || n == b);
    return n == a ? b : a;
  }

  // Time to move `bytes` across this link: propagation + serialization.
  sim::Duration transfer_time(std::uint64_t bytes) const {
    const double serialize_s =
        static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    return latency + sim::Duration::from_seconds(serialize_s);
  }
};

// A route between two nodes: the link sequence of a shortest (by latency)
// path, plus aggregate metrics the planner uses for constraint checks.
struct Route {
  std::vector<LinkId> links;
  sim::Duration total_latency = sim::Duration::zero();
  double bottleneck_bandwidth_bps = std::numeric_limits<double>::infinity();

  bool local() const { return links.empty(); }
};

class Network {
 public:
  Network() = default;
  // Copies/moves transfer the topology but not the route cache (the mutex
  // and atomic row slots are generation-local); the destination starts with
  // an empty cache, exactly as after a mutation.
  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&& other) noexcept;
  Network& operator=(Network&& other) noexcept;

  NodeId add_node(std::string name, double cpu_capacity = 1e6,
                  Credentials credentials = {});
  LinkId add_link(NodeId a, NodeId b, double bandwidth_bps,
                  sim::Duration latency, Credentials credentials = {});

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Link& link(LinkId id);
  const Link& link(LinkId id) const;

  std::optional<NodeId> find_node(const std::string& name) const;

  // All links incident to `n`.
  const std::vector<LinkId>& links_of(NodeId n) const;

  // Direct link between a and b, if one exists (first added wins).
  std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  // Shortest path from `from` to `to` minimizing total latency; ties broken
  // by hop count then link id for determinism. Empty route if from == to;
  // nullopt if disconnected. Down links and down intermediate nodes are
  // skipped; a down endpoint makes every pair involving it unreachable.
  std::optional<Route> route(NodeId from, NodeId to) const;

  // Fault-state mutators. Every one of these (and the property setters
  // below) invalidates the route cache, so pointers from cached_route() /
  // precompute_routes() must not be held across a call.
  void set_node_up(NodeId id, bool up);
  void set_link_up(LinkId id, bool up);
  void set_link_loss(LinkId id, double loss);  // drop probability in [0, 1]
  void set_link_bandwidth(LinkId id, double bandwidth_bps);
  void set_link_latency(LinkId id, sim::Duration latency);

  bool node_up(NodeId id) const { return node(id).up; }
  bool link_up(LinkId id) const { return link(id).up; }

  // Explicit cache invalidation for callers that mutate node/link fields
  // in place through the non-const accessors (credentials, capacity, ...).
  void invalidate_routes() { invalidate_cache(); }

  // All-pairs convenience built on a row-granular lazy cache; used by the
  // planner's environment view. The first query from a given source runs one
  // full Dijkstra and materializes that source's whole row; later queries
  // from the same source are pure reads. Materialization is thread-safe
  // (atomic row publication behind a mutex), so the parallel planner's
  // refinement workers can fault rows in concurrently without precomputing
  // the full O(V^2) table. Returned pointers stay valid until the next
  // mutation (every mutator invalidates the cache).
  const Route* cached_route(NodeId from, NodeId to) const;

  // Eagerly materializes every row (O(V) Dijkstras, O(V^2) entries). Only
  // worth it when most pairs will actually be queried — e.g. the megascale
  // engine; the hierarchical planner relies on lazy rows instead.
  void precompute_routes() const;

  // Rows materialized since the last mutation — observability for the lazy
  // cache (a 1000-node plan should touch far fewer than 1000 rows... unless
  // every cluster gets refined; the bench reports this).
  std::size_t route_rows_materialized() const;

  // Iteration support (ids are dense).
  std::vector<NodeId> all_nodes() const;
  std::vector<LinkId> all_links() const;

  std::string to_string() const;

 private:
  void invalidate_cache();
  // Single-source Dijkstra computing one full row of routes (same metric and
  // tie-breaks as route(), which stays separate because its early exit wins
  // for one-off queries). Row entries: self = empty local route, unreachable
  // pairs = the INT64_MAX/2-latency zero-bandwidth marker.
  std::vector<Route> compute_route_row(NodeId from) const;
  // Returns the materialized row for `from`, building it under the cache
  // mutex on first touch. The published pointer is immutable and stable
  // until the next mutation.
  const std::vector<Route>* route_row(NodeId from) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;

  // Lazy route cache, one row per source node. A row slot flips nullptr ->
  // row exactly once per cache generation; readers acquire-load the slot and
  // never take the mutex on the hot path. Mutators are NOT thread-safe with
  // concurrent readers (unchanged contract) — only concurrent *reads* are.
  struct RouteRowSlot {
    std::atomic<const std::vector<Route>*> row{nullptr};
  };
  mutable std::unique_ptr<RouteRowSlot[]> row_slots_;  // node_count() slots
  mutable std::vector<std::unique_ptr<std::vector<Route>>> row_storage_;
  mutable std::mutex route_mutex_;
  mutable std::atomic<bool> cache_valid_{false};
  mutable std::atomic<std::size_t> rows_materialized_{0};
};

}  // namespace psf::net
