// Network graph model used by both the planner (resource/credential view)
// and the runtime (message cost model).
//
// Nodes carry CPU capacity (abstract "cpu units"/second; one unit ≈ the cost
// the spec's Behaviors express per request) and credentials. Links carry
// latency, bandwidth, and credentials (e.g. secure=true). Links are
// bidirectional, matching the paper's Fig. 5 topology.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "net/credential.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace psf::net {

struct NodeId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = UINT32_MAX;

  constexpr bool valid() const { return value != kInvalid; }
  constexpr bool operator==(const NodeId&) const = default;
  constexpr auto operator<=>(const NodeId&) const = default;
};

struct LinkId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = UINT32_MAX;

  constexpr bool valid() const { return value != kInvalid; }
  constexpr bool operator==(const LinkId&) const = default;
  constexpr auto operator<=>(const LinkId&) const = default;
};

struct Node {
  NodeId id;
  std::string name;
  double cpu_capacity = 1e6;   // cpu units per second
  double cpu_reserved = 0.0;   // planner reservations
  Credentials credentials;
  // Position in an abstract plane; set by topology generators (Waxman needs
  // distances), zero for hand-built topologies.
  double x = 0.0;
  double y = 0.0;
  // Fault state: a down node is skipped by routing and unusable for
  // placement. Mutate through Network::set_node_up so route caches refresh.
  bool up = true;

  double cpu_available() const { return cpu_capacity - cpu_reserved; }
};

struct Link {
  LinkId id;
  NodeId a;
  NodeId b;
  double bandwidth_bps = 100e6;
  sim::Duration latency = sim::Duration::zero();
  double bandwidth_reserved_bps = 0.0;  // planner reservations
  Credentials credentials;
  // Fault state: a down link carries no traffic and is skipped by routing;
  // `loss` is the per-message drop probability applied at each hop. Mutate
  // through Network::set_link_up / set_link_loss so route caches refresh.
  bool up = true;
  double loss = 0.0;

  double bandwidth_available_bps() const {
    return bandwidth_bps - bandwidth_reserved_bps;
  }

  NodeId other(NodeId n) const {
    PSF_CHECK(n == a || n == b);
    return n == a ? b : a;
  }

  // Time to move `bytes` across this link: propagation + serialization.
  sim::Duration transfer_time(std::uint64_t bytes) const {
    const double serialize_s =
        static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    return latency + sim::Duration::from_seconds(serialize_s);
  }
};

// A route between two nodes: the link sequence of a shortest (by latency)
// path, plus aggregate metrics the planner uses for constraint checks.
struct Route {
  std::vector<LinkId> links;
  sim::Duration total_latency = sim::Duration::zero();
  double bottleneck_bandwidth_bps = std::numeric_limits<double>::infinity();

  bool local() const { return links.empty(); }
};

class Network {
 public:
  NodeId add_node(std::string name, double cpu_capacity = 1e6,
                  Credentials credentials = {});
  LinkId add_link(NodeId a, NodeId b, double bandwidth_bps,
                  sim::Duration latency, Credentials credentials = {});

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Link& link(LinkId id);
  const Link& link(LinkId id) const;

  std::optional<NodeId> find_node(const std::string& name) const;

  // All links incident to `n`.
  const std::vector<LinkId>& links_of(NodeId n) const;

  // Direct link between a and b, if one exists (first added wins).
  std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  // Shortest path from `from` to `to` minimizing total latency; ties broken
  // by hop count then link id for determinism. Empty route if from == to;
  // nullopt if disconnected. Down links and down intermediate nodes are
  // skipped; a down endpoint makes every pair involving it unreachable.
  std::optional<Route> route(NodeId from, NodeId to) const;

  // Fault-state mutators. Every one of these (and the property setters
  // below) invalidates the route cache, so pointers from cached_route() /
  // precompute_routes() must not be held across a call.
  void set_node_up(NodeId id, bool up);
  void set_link_up(LinkId id, bool up);
  void set_link_loss(LinkId id, double loss);  // drop probability in [0, 1]
  void set_link_bandwidth(LinkId id, double bandwidth_bps);
  void set_link_latency(LinkId id, sim::Duration latency);

  bool node_up(NodeId id) const { return node(id).up; }
  bool link_up(LinkId id) const { return link(id).up; }

  // Explicit cache invalidation for callers that mutate node/link fields
  // in place through the non-const accessors (credentials, capacity, ...).
  void invalidate_routes() { invalidate_cache(); }

  // All-pairs convenience built on route(); used by the planner's
  // environment view. Results are cached; the cache resets on mutation.
  // Lazily filling the cache is NOT thread-safe — parallel readers must call
  // precompute_routes() first.
  const Route* cached_route(NodeId from, NodeId to) const;

  // Eagerly fills the all-pairs route cache. After this returns (and until
  // the next mutation) cached_route() is a pure read with stable pointers,
  // safe to call concurrently — the parallel planner calls this before
  // fanning out its search workers.
  void precompute_routes() const;

  // Iteration support (ids are dense).
  std::vector<NodeId> all_nodes() const;
  std::vector<LinkId> all_links() const;

  std::string to_string() const;

 private:
  void invalidate_cache();
  // Single-source Dijkstra that fills one row of the route cache (same
  // metric and tie-breaks as route(), which stays separate because its
  // early exit wins for one-off queries).
  void fill_routes_from(NodeId from) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  // route cache: indexed [from * n + to]; empty when invalid.
  mutable std::vector<std::optional<Route>> route_cache_;
  mutable bool cache_valid_ = false;
};

}  // namespace psf::net
