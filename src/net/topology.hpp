// Topology generators in the style of BRITE (Medina & Matta, BU-CS-2000-005),
// which the paper used to produce its case-study network.
//
// Three models are provided:
//  - Waxman: random geometric placement, P(u,v) = alpha * exp(-d / (beta*L));
//  - Barabási–Albert: incremental growth with preferential attachment;
//  - hierarchical: a Waxman AS-level graph whose nodes are expanded into
//    router-level Waxman subgraphs (BRITE's top-down mode).
//
// All generators guarantee a connected graph (a deterministic spanning pass
// adds any missing links) and are fully determined by the seed.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace psf::net {

struct WaxmanParams {
  std::size_t num_nodes = 20;
  double alpha = 0.4;          // link-probability scale
  double beta = 0.2;           // distance sensitivity
  double plane_size = 1000.0;  // nodes placed in [0, plane_size]^2
  // Resource ranges; drawn uniformly per node/link.
  double min_bandwidth_bps = 10e6;
  double max_bandwidth_bps = 100e6;
  double min_cpu = 0.5e6;
  double max_cpu = 2e6;
  // Latency per unit of plane distance (speed-of-light-ish proxy).
  double latency_per_unit_us = 1.0;
};

struct BarabasiAlbertParams {
  std::size_t num_nodes = 20;
  std::size_t links_per_new_node = 2;  // BRITE's m
  double plane_size = 1000.0;
  double min_bandwidth_bps = 10e6;
  double max_bandwidth_bps = 100e6;
  double min_cpu = 0.5e6;
  double max_cpu = 2e6;
  double latency_per_unit_us = 1.0;
};

struct HierarchicalParams {
  WaxmanParams as_level;      // num_nodes = number of ASes
  WaxmanParams router_level;  // num_nodes = routers per AS
  // Inter-AS links are slower and higher-latency than intra-AS links.
  double inter_as_bandwidth_scale = 0.2;
  double inter_as_latency_scale = 5.0;
};

Network generate_waxman(const WaxmanParams& params, util::Rng& rng);
Network generate_barabasi_albert(const BarabasiAlbertParams& params,
                                 util::Rng& rng);
Network generate_hierarchical(const HierarchicalParams& params,
                              util::Rng& rng);

}  // namespace psf::net
