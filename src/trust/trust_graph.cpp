#include "trust/trust_graph.hpp"

#include <algorithm>
#include <sstream>

namespace psf::trust {

std::string TrustCredential::to_string() const {
  std::ostringstream oss;
  oss << "[" << id << "] " << issuer;
  if (kind == CredentialKind::kAssertion) {
    oss << " asserts " << subject << " has " << granted.full_name();
  } else {
    oss << " delegates " << granted.full_name() << " to holders of "
        << via.full_name();
  }
  if (value) oss << " = " << *value;
  if (delegatable) oss << " (delegatable)";
  if (revoked) oss << " (revoked)";
  return oss.str();
}

void TrustGraph::declare_namespace(const std::string& ns, Principal owner) {
  namespace_owners_[ns] = std::move(owner);
}

std::optional<Principal> TrustGraph::namespace_owner(
    const std::string& ns) const {
  auto it = namespace_owners_.find(ns);
  if (it == namespace_owners_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t TrustGraph::add(TrustCredential credential) {
  credential.id = credentials_.size();
  credentials_.push_back(std::move(credential));
  return credentials_.back().id;
}

util::Status TrustGraph::revoke(std::uint64_t credential_id) {
  if (credential_id >= credentials_.size()) {
    return util::not_found("no credential with id " +
                           std::to_string(credential_id));
  }
  TrustCredential& c = credentials_[credential_id];
  if (c.revoked) {
    return util::failed_precondition("credential already revoked");
  }
  c.revoked = true;
  for (const auto& observer : observers_) observer(c);
  return util::Status::ok();
}

namespace {

// Internal holding: value + whether it may be further delegated.
struct Holding {
  std::int64_t value = 0;
  bool delegatable = false;
};

using WorkingSet = std::map<Principal, std::map<Role, Holding>>;

// Merge a derived holding; returns true if anything changed (value grew or
// delegatability was gained).
bool merge(WorkingSet& ws, const Principal& p, const Role& r,
           std::int64_t value, bool delegatable) {
  Holding& h = ws[p][r];
  bool changed = false;
  if (value > h.value) {
    h.value = value;
    changed = true;
  }
  if (delegatable && !h.delegatable) {
    h.delegatable = true;
    changed = true;
  }
  return changed;
}

}  // namespace

Holdings TrustGraph::holdings_of(const Principal& principal,
                                 sim::Time now) const {
  // Fixed point across all principals: delegations can chain through
  // intermediate principals, so we derive globally and project at the end.
  WorkingSet ws;

  auto issuer_may_grant = [&](const Principal& issuer, const Role& role,
                              std::int64_t* cap) -> bool {
    auto owner = namespace_owner(role.ns);
    if (owner && *owner == issuer) {
      *cap = INT64_MAX;  // owners grant at full strength
      return true;
    }
    auto pit = ws.find(issuer);
    if (pit == ws.end()) return false;
    auto rit = pit->second.find(role);
    if (rit == pit->second.end() || !rit->second.delegatable) return false;
    *cap = rit->second.value;  // cannot grant more than held
    return true;
  };

  bool changed = true;
  // Bound iterations defensively; each useful iteration adds at least one
  // holding, and holdings are bounded by credentials × principals.
  std::size_t guard = credentials_.size() * credentials_.size() + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (const TrustCredential& c : credentials_) {
      if (!credential_live(c, now)) continue;
      std::int64_t cap = 0;
      if (!issuer_may_grant(c.issuer, c.granted, &cap)) continue;
      const std::int64_t asserted = c.value.value_or(1);
      if (c.kind == CredentialKind::kAssertion) {
        changed |= merge(ws, c.subject, c.granted, std::min(asserted, cap),
                         c.delegatable);
      } else {
        // Delegation: every holder of `via` gains `granted`. An explicit
        // value on the delegation sets the granted strength (the via role
        // may live on a different namespace's scale — e.g. valueless
        // partner membership granting TrustLevel=2); a valueless
        // delegation inherits the via role's value. Either way the issuer
        // cannot grant beyond its own authority (`cap`).
        for (auto& [holder, roles] : ws) {
          auto vit = roles.find(c.via);
          if (vit == roles.end()) continue;
          const std::int64_t via_value = vit->second.value;
          const std::int64_t derived =
              std::min(c.value.value_or(via_value), cap);
          changed |= merge(ws, holder, c.granted, derived, c.delegatable);
        }
      }
    }
  }

  Holdings out;
  auto it = ws.find(principal);
  if (it != ws.end()) {
    for (const auto& [role, holding] : it->second) {
      out[role] = holding.value;
    }
  }
  return out;
}

std::optional<std::int64_t> TrustGraph::role_value(const Principal& principal,
                                                   const Role& role,
                                                   sim::Time now) const {
  Holdings h = holdings_of(principal, now);
  auto it = h.find(role);
  if (it == h.end()) return std::nullopt;
  return it->second;
}

}  // namespace psf::trust
