// Credential model for the miniature decentralized trust-management engine
// (the paper's §6 points at dRBAC [10]; this is a small C++ rendition of the
// subset the framework needs).
//
// Two credential kinds:
//  - Assertion: issuer states that a subject principal holds role
//    `namespace.role` (optionally with an integer value, e.g.
//    mail.TrustLevel = 4);
//  - Delegation: issuer states that holders of role B are granted role A in
//    the issuer's namespace ("transforming properties in one namespace into
//    properties in another ... issuing a different kind of credential",
//    paper §6).
//
// A credential is only effective when its issuer is authorized for the
// granted role's namespace: either the issuer *owns* the namespace, or the
// issuer itself holds the role with the delegatable bit set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace psf::trust {

using Principal = std::string;

// A role is "namespace.name"; the namespace identifies the owning authority.
struct Role {
  std::string ns;
  std::string name;

  std::string full_name() const { return ns + "." + name; }
  bool operator==(const Role&) const = default;
  auto operator<=>(const Role&) const = default;
};

enum class CredentialKind { kAssertion, kDelegation };

struct TrustCredential {
  std::uint64_t id = 0;  // assigned by the graph
  CredentialKind kind = CredentialKind::kAssertion;
  Principal issuer;

  // kAssertion: `subject` holds `granted` (with optional value).
  // kDelegation: holders of `via` are granted `granted`.
  Principal subject;
  Role granted;
  Role via;

  std::optional<std::int64_t> value;
  bool delegatable = false;

  // Validity window and revocation (monitored; see TrustGraph observers).
  sim::Time not_after = sim::Time::max();
  bool revoked = false;

  std::string to_string() const;
};

}  // namespace psf::trust
