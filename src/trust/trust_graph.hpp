// Credential store + role-derivation engine.
//
// holdings_of(principal) computes the fixed point of role derivation: start
// from authorized assertions about the principal, then repeatedly apply
// authorized delegations until no new (role, value) pairs appear. Values
// combine by maximum (holding TrustLevel=4 and TrustLevel=2 means 4), and a
// delegation caps the derived value at the delegation's own value if it has
// one (a delegation may grant a *weaker* version of a role, never a
// stronger one).
//
// Observers fire on revocation so the framework can replan deployments whose
// conditions relied on a now-invalid credential (paper §6: "continuous
// monitoring of credential validity").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trust/credential.hpp"
#include "util/status.hpp"

namespace psf::trust {

// (role -> effective integer value). Roles without values use value 1
// (boolean-style possession).
using Holdings = std::map<Role, std::int64_t>;

class TrustGraph {
 public:
  // Declares `owner` as the authority for `ns`; assertions/delegations that
  // grant roles in `ns` are only effective when issued by the owner or by a
  // principal holding the role delegatably.
  void declare_namespace(const std::string& ns, Principal owner);

  std::optional<Principal> namespace_owner(const std::string& ns) const;

  // Adds a credential; returns its id (usable with revoke()).
  std::uint64_t add(TrustCredential credential);

  util::Status revoke(std::uint64_t credential_id);

  // All roles derivable for `principal` at time `now`, considering
  // revocation and expiry.
  Holdings holdings_of(const Principal& principal,
                       sim::Time now = sim::Time::zero()) const;

  // Convenience: the effective value of one role, if held.
  std::optional<std::int64_t> role_value(const Principal& principal,
                                         const Role& role,
                                         sim::Time now = sim::Time::zero()) const;

  // Observer invoked with the revoked credential.
  using RevocationObserver = std::function<void(const TrustCredential&)>;
  void add_revocation_observer(RevocationObserver observer) {
    observers_.push_back(std::move(observer));
  }

  std::size_t credential_count() const { return credentials_.size(); }
  const std::vector<TrustCredential>& credentials() const {
    return credentials_;
  }

 private:
  bool credential_live(const TrustCredential& c, sim::Time now) const {
    return !c.revoked && now <= c.not_after;
  }

  std::map<std::string, Principal> namespace_owners_;
  std::vector<TrustCredential> credentials_;
  std::vector<RevocationObserver> observers_;
};

}  // namespace psf::trust
