// E5 (ablation) — planner scalability: the paper notes its implementation
// "exhaustively searches" and points to a dynamic-programming algorithm for
// chain-shaped services [13]. This bench quantifies that tradeoff:
//   - exhaustive vs DP on path networks of growing length;
//   - exhaustive planning cost on Waxman topologies of growing size;
//   - the effect of pre-existing reusable instances on search cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "mail/mail_spec.hpp"
#include "net/topology.hpp"
#include "planner/dp_chain.hpp"
#include "planner/linkage.hpp"
#include "planner/planner.hpp"
#include "spec/builder.hpp"

namespace {

using namespace psf;

planner::CredentialMapTranslator standard_translator() {
  planner::CredentialMapTranslator t;
  t.map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
              spec::PropertyValue::integer(3)});
  t.map_node({"Confidentiality", "secure", spec::PropertyType::kBoolean,
              spec::PropertyValue::boolean(true)});
  t.map_link({"Confidentiality", "secure", spec::PropertyType::kBoolean,
              spec::PropertyValue::boolean(true)});
  return t;
}

spec::ServiceSpec chain_spec() {
  return spec::SpecBuilder("Chain")
      .interval_property("TrustLevel", 1, 99)
      .interface("Entry", {})
      .interface("Mid", {})
      .interface("Api", {})
      .component("Client")
      .implements("Entry", {})
      .requires_iface("Mid", {})
      .cpu_per_request(10)
      .done()
      .component("Filter")
      .implements("Mid", {})
      .requires_iface("Api", {})
      .rrf(0.2)
      .cpu_per_request(30)
      .done()
      .component("Origin")
      .implements("Api", {})
      .cpu_per_request(50)
      .done()
      .build();
}

net::Network path_network(std::size_t n) {
  net::Network network;
  net::Credentials node_creds;
  node_creds.set("trust", std::int64_t{3});
  node_creds.set("secure", true);
  std::vector<net::NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        network.add_node("p" + std::to_string(i), 1e6, node_creds));
  }
  net::Credentials secure;
  secure.set("secure", true);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    network.add_link(nodes[i], nodes[i + 1], 10e6,
                     sim::Duration::from_millis(20), secure);
  }
  return network;
}

void BM_ExhaustiveOnPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  net::Network network = path_network(n);
  auto translator = standard_translator();
  planner::EnvironmentView env(network, translator);
  spec::ServiceSpec spec = chain_spec();
  planner::Planner planner(spec, env);

  planner::PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = net::NodeId{0};

  std::uint64_t candidates = 0;
  for (auto _ : state) {
    planner::SearchStats stats;
    auto plan = planner.plan(request, {}, &stats);
    benchmark::DoNotOptimize(plan);
    candidates = stats.candidates_examined;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_ExhaustiveOnPath)->DenseRange(4, 20, 4);

void BM_DpChainOnPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  net::Network network = path_network(n);
  auto translator = standard_translator();
  planner::EnvironmentView env(network, translator);
  spec::ServiceSpec spec = chain_spec();
  std::vector<const spec::ComponentDef*> chain = {
      spec.find_component("Client"), spec.find_component("Filter"),
      spec.find_component("Origin")};
  std::vector<net::NodeId> path;
  for (std::size_t i = 0; i < n; ++i) {
    path.push_back(net::NodeId{static_cast<std::uint32_t>(i)});
  }
  for (auto _ : state) {
    auto result = planner::plan_chain_dp(spec, env, chain, path);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DpChainOnPath)->DenseRange(4, 20, 4)->DenseRange(40, 120, 40);

void BM_MailPlannerOnWaxman(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  net::WaxmanParams params;
  params.num_nodes = n;
  util::Rng rng(2026);
  net::Network network = net::generate_waxman(params, rng);
  // Give the generated nodes the mail service's credential vocabulary.
  for (net::NodeId id : network.all_nodes()) {
    network.node(id).credentials.set(
        "trust", static_cast<std::int64_t>(2 + id.value % 3));
    network.node(id).credentials.set("secure", true);
  }
  network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
  for (net::LinkId id : network.all_links()) {
    network.link(id).credentials.set("secure", (id.value % 3) != 0);
  }

  spec::ServiceSpec spec = mail::mail_service_spec();
  auto translator = mail::mail_translator();
  planner::EnvironmentView env(network, *translator);
  planner::Planner planner(spec, env);

  // The pre-placed home MailServer at node 0.
  planner::ExistingInstance home;
  home.runtime_id = 1;
  home.component = spec.find_component("MailServer");
  home.node = net::NodeId{0};
  home.effective["ServerInterface"]["Confidentiality"] =
      spec::PropertyValue::boolean(true);
  home.effective["ServerInterface"]["TrustLevel"] =
      spec::PropertyValue::integer(5);
  home.downstream_latency_s = 1e-4;

  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(2));
  request.client_node = net::NodeId{static_cast<std::uint32_t>(n - 1)};
  request.max_depth = 5;

  std::uint64_t candidates = 0, scored = 0;
  for (auto _ : state) {
    planner::SearchStats stats;
    auto plan = planner.plan(request, {home}, &stats);
    benchmark::DoNotOptimize(plan);
    candidates = stats.candidates_examined;
    scored = stats.plans_scored;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["plans"] = static_cast<double>(scored);
}
BENCHMARK(BM_MailPlannerOnWaxman)->Arg(8)->Arg(12)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

// The parallel branch-and-bound search on the same mail-on-Waxman world as
// BM_MailPlannerOnWaxman/24: threads × bound-pruning cross product. The
// interesting comparisons are against the serial exhaustive baseline
// (threads=1, bound=0 ≡ the pre-B&B planner) and across thread counts.
void BM_ParallelBnB(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const bool bound = state.range(1) != 0;
  const std::size_t n = 24;
  net::WaxmanParams params;
  params.num_nodes = n;
  util::Rng rng(2026);
  net::Network network = net::generate_waxman(params, rng);
  for (net::NodeId id : network.all_nodes()) {
    network.node(id).credentials.set(
        "trust", static_cast<std::int64_t>(2 + id.value % 3));
    network.node(id).credentials.set("secure", true);
  }
  network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
  for (net::LinkId id : network.all_links()) {
    network.link(id).credentials.set("secure", (id.value % 3) != 0);
  }

  spec::ServiceSpec spec = mail::mail_service_spec();
  auto translator = mail::mail_translator();
  planner::EnvironmentView env(network, *translator);
  planner::Planner planner(spec, env);

  planner::ExistingInstance home;
  home.runtime_id = 1;
  home.component = spec.find_component("MailServer");
  home.node = net::NodeId{0};
  home.effective["ServerInterface"]["Confidentiality"] =
      spec::PropertyValue::boolean(true);
  home.effective["ServerInterface"]["TrustLevel"] =
      spec::PropertyValue::integer(5);
  home.downstream_latency_s = 1e-4;

  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(2));
  request.client_node = net::NodeId{static_cast<std::uint32_t>(n - 1)};
  request.max_depth = 5;
  request.search_threads = threads;
  request.bound_pruning = bound;

  std::uint64_t candidates = 0, pruned = 0;
  for (auto _ : state) {
    planner::SearchStats stats;
    auto plan = planner.plan(request, {home}, &stats);
    benchmark::DoNotOptimize(plan);
    candidates = stats.candidates_examined;
    pruned = stats.pruned_by_bound;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["pruned"] = static_cast<double>(pruned);
}
BENCHMARK(BM_ParallelBnB)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_ReuseShrinksSearch(benchmark::State& state) {
  // With a warm ViewMailServer offered for reuse, the search terminates at
  // it instead of exploring deep chains.
  const bool with_existing = state.range(0) != 0;
  net::Network network = path_network(6);
  network.node(net::NodeId{5}).credentials.set("trust", std::int64_t{5});
  spec::ServiceSpec spec = mail::mail_service_spec();
  auto translator = mail::mail_translator();
  planner::EnvironmentView env(network, *translator);
  planner::Planner planner(spec, env);

  std::vector<planner::ExistingInstance> existing;
  {
    planner::ExistingInstance home;
    home.runtime_id = 1;
    home.component = spec.find_component("MailServer");
    home.node = net::NodeId{5};
    home.effective["ServerInterface"]["Confidentiality"] =
        spec::PropertyValue::boolean(true);
    home.effective["ServerInterface"]["TrustLevel"] =
        spec::PropertyValue::integer(5);
    home.downstream_latency_s = 1e-4;
    existing.push_back(home);
  }
  if (with_existing) {
    planner::ExistingInstance view;
    view.runtime_id = 2;
    view.component = spec.find_component("ViewMailServer");
    view.node = net::NodeId{1};
    view.factors.values["TrustLevel"] = spec::PropertyValue::integer(3);
    view.effective["ServerInterface"]["Confidentiality"] =
        spec::PropertyValue::boolean(true);
    view.effective["ServerInterface"]["TrustLevel"] =
        spec::PropertyValue::integer(3);
    view.downstream_latency_s = 5e-3;
    existing.push_back(view);
  }

  planner::PlanRequest request;
  request.interface_name = "ClientInterface";
  request.required_properties.emplace_back("TrustLevel",
                                           spec::PropertyValue::integer(2));
  request.client_node = net::NodeId{0};
  request.max_depth = 5;

  std::uint64_t candidates = 0;
  for (auto _ : state) {
    planner::SearchStats stats;
    auto plan = planner.plan(request, existing, &stats);
    benchmark::DoNotOptimize(plan);
    candidates = stats.candidates_examined;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_ReuseShrinksSearch)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
