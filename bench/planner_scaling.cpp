// E11 — hierarchical anytime planner scaling (EXPERIMENTS.md E11).
//
// Four gated sections:
//   A. 1000-node Waxman, mail world: hierarchical search must plan in
//      < 1 s wall (p50) — the tentpole gate. Also reports how few route
//      rows the lazy cache materialized out of the full O(V^2) table.
//   B. Optimality gap vs flat BnB where flat still completes (<= 32
//      nodes): hierarchical primary score within 5% of the optimum.
//   C. Chain-DP fast path vs flat search on path topologies: identical
//      expected latency (1e-9) and the DP's speedup.
//   D. Anytime contract, end to end through the Framework: a truncated
//      access returns a valid incumbent with deadline_hit; an epoch bump
//      discards stale improvement jobs (zero stale-plan binds); background
//      swaps drive the cached score monotonically down.
//
// Modes:
//   planner_scaling            full run, writes BENCH_planner_scaling.json
//   planner_scaling --smoke    reduced sizes for CI (tier-1 ctest target),
//                              writes BENCH_planner_scaling_smoke.json;
//                              section A shrinks to 256 nodes and reports
//                              without the sub-second gate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/types.hpp"
#include "net/topology.hpp"
#include "planner/cluster.hpp"
#include "planner/planner.hpp"
#include "spec/builder.hpp"

namespace {

using namespace psf;
using Clock = std::chrono::steady_clock;  // detlint:allow(DET004 bench measures wall-clock)

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// ---- the mail-on-Waxman world shared by sections A, B and D ----------------

net::Network mail_waxman(std::size_t n, std::uint64_t seed) {
  net::WaxmanParams params;
  params.num_nodes = n;
  util::Rng rng(seed);
  net::Network network = net::generate_waxman(params, rng);
  for (net::NodeId id : network.all_nodes()) {
    network.node(id).credentials.set(
        "trust", static_cast<std::int64_t>(2 + id.value % 3));
    network.node(id).credentials.set("secure", true);
  }
  network.node(net::NodeId{0}).credentials.set("trust", std::int64_t{5});
  for (net::LinkId id : network.all_links()) {
    network.link(id).credentials.set("secure", (id.value % 3) != 0);
  }
  return network;
}

struct MailWorld {
  net::Network network;
  spec::ServiceSpec spec;
  std::shared_ptr<planner::CredentialMapTranslator> translator;
  std::unique_ptr<planner::EnvironmentView> env;
  std::unique_ptr<planner::Planner> planner;
  std::vector<planner::ExistingInstance> existing;

  explicit MailWorld(std::size_t n, std::uint64_t seed = 2026) {
    network = mail_waxman(n, seed);
    spec = mail::mail_service_spec();
    translator = mail::mail_translator();
    env = std::make_unique<planner::EnvironmentView>(network, *translator);
    planner = std::make_unique<planner::Planner>(spec, *env);

    planner::ExistingInstance home;
    home.runtime_id = 1;
    home.component = spec.find_component("MailServer");
    home.node = net::NodeId{0};
    home.effective["ServerInterface"]["Confidentiality"] =
        spec::PropertyValue::boolean(true);
    home.effective["ServerInterface"]["TrustLevel"] =
        spec::PropertyValue::integer(5);
    home.downstream_latency_s = 1e-4;
    existing.push_back(home);
  }

  planner::PlanRequest request() const {
    planner::PlanRequest req;
    req.interface_name = "ClientInterface";
    req.required_properties.emplace_back("TrustLevel",
                                         spec::PropertyValue::integer(2));
    req.client_node =
        net::NodeId{static_cast<std::uint32_t>(network.node_count() - 1)};
    req.max_depth = 4;
    return req;
  }
};

// ---- section C's view-free chain world -------------------------------------

spec::ServiceSpec chain_spec() {
  return spec::SpecBuilder("Chain")
      .interface("Entry", {})
      .interface("Mid", {})
      .interface("Api", {})
      .component("Client")
          .implements("Entry", {})
          .requires_iface("Mid", {})
          .cpu_per_request(10)
          .message_bytes(1024, 4096)
          .code_size(32 * 1024)
          .done()
      .component("Filter")
          .implements("Mid", {})
          .requires_iface("Api", {})
          .rrf(0.2)
          .cpu_per_request(30)
          .message_bytes(2048, 8192)
          .code_size(64 * 1024)
          .done()
      .component("Origin")
          .implements("Api", {})
          .cpu_per_request(50)
          .message_bytes(512, 16384)
          .code_size(128 * 1024)
          .done()
      .build();
}

net::Network path_network(std::size_t n) {
  net::Network network;
  std::vector<net::NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(network.add_node("p" + std::to_string(i), 1e6));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    network.add_link(nodes[i], nodes[i + 1], 10e6,
                     sim::Duration::from_millis(5 + 7 * (i % 3)));
  }
  return network;
}

int run_bench(bool smoke) {
  psf::bench::JsonResult json(smoke ? "planner_scaling_smoke"
                                    : "planner_scaling");
  json.add("smoke", smoke);
  json.add("hardware_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  bool all_gates_passed = true;

  // ---- A: hierarchical search at scale -------------------------------------
  {
    const std::size_t n = smoke ? 256 : 1000;
    const std::size_t runs = smoke ? 3 : 5;
    MailWorld world(n);
    const planner::PlanRequest request = world.request();

    std::vector<double> wall;
    planner::SearchStats stats;
    bool satisfiable = true;
    for (std::size_t r = 0; r < runs; ++r) {
      // Fresh planner state per run is unnecessary (the planner is
      // stateless), but route rows persist — which is the production shape:
      // the first plan faults rows in, later plans ride them.
      const auto start = Clock::now();
      auto plan = world.planner->plan(request, world.existing, &stats);
      wall.push_back(seconds_since(start));
      satisfiable = satisfiable && plan.has_value();
    }
    const double p50 = median(wall);
    const bool gate_applicable = !smoke;
    const bool gate_passed = satisfiable && (smoke || p50 < 1.0);
    all_gates_passed = all_gates_passed && gate_passed;

    std::printf(
        "A: hierarchical mail plan, %zu-node Waxman: p50 %.3f s (%zu runs), "
        "%llu clusters (%llu pruned, %llu refined), %llu candidates, "
        "route rows %zu/%zu\n",
        n, p50, runs, static_cast<unsigned long long>(stats.clusters_total),
        static_cast<unsigned long long>(stats.clusters_pruned),
        static_cast<unsigned long long>(stats.clusters_refined),
        static_cast<unsigned long long>(stats.candidates_examined),
        world.network.route_rows_materialized(), world.network.node_count());

    json.add("scale_nodes", static_cast<std::uint64_t>(n));
    json.add("scale_runs", static_cast<std::uint64_t>(runs));
    json.add("scale_p50_s", p50);
    json.add("scale_satisfiable", satisfiable);
    json.add("scale_used_hierarchy", stats.used_hierarchy);
    json.add("scale_clusters_total", stats.clusters_total);
    json.add("scale_clusters_pruned", stats.clusters_pruned);
    json.add("scale_clusters_refined", stats.clusters_refined);
    json.add("scale_candidates", stats.candidates_examined);
    json.add("scale_route_rows",
             static_cast<std::uint64_t>(
                 world.network.route_rows_materialized()));
    json.add("scale_gate_s", 1.0);
    json.add("scale_gate_skipped", !gate_applicable);
    json.add("scale_gate_passed", gate_passed);
    if (!gate_passed) {
      std::fprintf(stderr, "planner_scaling: %zu-node p50 %.3f s >= 1 s gate\n",
                   n, p50);
    }
  }

  // ---- B: optimality gap vs flat BnB ---------------------------------------
  {
    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{12, 16}
              : std::vector<std::size_t>{12, 16, 24, 32};
    double worst_gap = 0.0;
    bool comparable = true;
    for (const std::size_t n : sizes) {
      MailWorld world(n);
      planner::PlanRequest flat = world.request();
      flat.search_mode = planner::SearchMode::kFlat;
      planner::PlanRequest hier = world.request();
      hier.search_mode = planner::SearchMode::kHierarchical;
      hier.cluster_count = std::max<std::size_t>(
          2, planner::ClusterIndex::default_cluster_count(n));

      auto optimal = world.planner->plan(flat, world.existing);
      auto heuristic = world.planner->plan(hier, world.existing);
      if (!optimal.has_value() || !heuristic.has_value()) {
        comparable = comparable &&
                     optimal.has_value() == heuristic.has_value();
        continue;
      }
      const double a = optimal->metrics.expected_latency_s;
      const double b = heuristic->metrics.expected_latency_s;
      const double gap = a > 0.0 ? (b - a) / a : 0.0;
      worst_gap = std::max(worst_gap, gap);
      std::printf("B: n=%zu flat %.6f s vs hierarchical %.6f s (gap %.2f%%)\n",
                  n, a, b, 100.0 * gap);
    }
    const bool gate_passed = comparable && worst_gap <= 0.05;
    all_gates_passed = all_gates_passed && gate_passed;
    json.add("gap_sizes", static_cast<std::uint64_t>(sizes.size()));
    json.add("gap_worst", worst_gap);
    json.add("gap_gate", 0.05);
    json.add("gap_gate_passed", gate_passed);
    if (!gate_passed) {
      std::fprintf(stderr, "planner_scaling: worst gap %.2f%% above 5%% gate\n",
                   100.0 * worst_gap);
    }
  }

  // ---- C: chain-DP fast path ------------------------------------------------
  {
    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{8, 16}
              : std::vector<std::size_t>{8, 16, 32, 64};
    const spec::ServiceSpec spec = chain_spec();
    auto translator = std::make_shared<planner::CredentialMapTranslator>();
    double worst_delta = 0.0;
    double total_dp_s = 0.0, total_search_s = 0.0;
    bool dp_used = true;
    for (const std::size_t n : sizes) {
      const net::Network network = path_network(n);
      planner::EnvironmentView env(network, *translator);
      planner::Planner planner(spec, env);

      planner::PlanRequest dp;
      dp.interface_name = "Entry";
      dp.client_node = net::NodeId{0};
      dp.max_depth = 3;
      planner::PlanRequest search = dp;
      search.chain_dp = false;
      search.search_mode = planner::SearchMode::kFlat;

      planner::SearchStats dp_stats;
      auto t0 = Clock::now();
      auto a = planner.plan(dp, {}, &dp_stats);
      total_dp_s += seconds_since(t0);
      t0 = Clock::now();
      auto b = planner.plan(search, {});
      total_search_s += seconds_since(t0);

      if (!a.has_value() || !b.has_value()) {
        dp_used = false;
        continue;
      }
      dp_used = dp_used && dp_stats.used_chain_dp;
      worst_delta = std::max(
          worst_delta, std::abs(a->metrics.expected_latency_s -
                                b->metrics.expected_latency_s));
      std::printf("C: n=%zu chain-DP %.6f s == search %.6f s\n", n,
                  a->metrics.expected_latency_s,
                  b->metrics.expected_latency_s);
    }
    const bool gate_passed = dp_used && worst_delta <= 1e-9;
    all_gates_passed = all_gates_passed && gate_passed;
    std::printf("C: DP total %.4f s vs search total %.4f s (%.1fx)\n",
                total_dp_s, total_search_s,
                total_dp_s > 0.0 ? total_search_s / total_dp_s : 0.0);
    json.add("chain_dp_used", dp_used);
    json.add("chain_dp_worst_delta_s", worst_delta);
    json.add("chain_dp_total_s", total_dp_s);
    json.add("chain_search_total_s", total_search_s);
    json.add("chain_gate_passed", gate_passed);
    if (!gate_passed) {
      std::fprintf(stderr,
                   "planner_scaling: chain-DP mismatch %.3g s vs 1e-9 gate\n",
                   worst_delta);
    }
  }

  // ---- D: anytime contract through the runtime ------------------------------
  {
    const std::size_t n = smoke ? 48 : 200;
    net::Network network = mail_waxman(n, 41);
    core::Framework fw(std::move(network));
    auto config = std::make_shared<mail::MailServiceConfig>();
    if (auto st = mail::register_mail_factories(fw.runtime().factories(),
                                                config);
        !st.is_ok()) {
      std::fprintf(stderr, "planner_scaling: %s\n", st.to_string().c_str());
      return 1;
    }
    auto registration = mail::mail_registration(net::NodeId{0});
    registration.anytime_deadline_s = 1e-9;  // truncate at first incumbent
    if (auto st =
            fw.register_service(std::move(registration), mail::mail_translator());
        !st.is_ok()) {
      std::fprintf(stderr, "planner_scaling: %s\n", st.to_string().c_str());
      return 1;
    }

    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(2));
    defaults.request_rate_rps = 20.0;
    defaults.client_node = net::NodeId{static_cast<std::uint32_t>(n - 1)};

    bool ok = true;
    const auto access = [&](runtime::AccessOutcome& out) {
      bool done = false;
      fw.server().request_access(
          "SecureMail", defaults,
          [&](util::Expected<runtime::AccessOutcome> result) {
            if (result.has_value()) {
              out = std::move(result).value();
            } else {
              std::fprintf(stderr, "planner_scaling: access failed: %s\n",
                           result.status().to_string().c_str());
              ok = false;
            }
            done = true;
          });
      fw.run();
      ok = ok && done;
    };
    const auto drain = [&] {
      bool drained = false;
      fw.server().drain_improvements([&] { drained = true; });
      fw.run();
      ok = ok && drained;
    };

    // Truncated access #1, then an epoch bump invalidates its entry and its
    // queued improvement before the improver runs.
    runtime::AccessOutcome first;
    access(first);
    const bool incumbent_valid = ok && first.search.deadline_hit;
    fw.server().invalidate_cached_plans();
    drain();

    // Access #2 must plan cold (zero stale binds), enqueue its own job, and
    // this time the improver runs to completion and may hot-swap.
    runtime::AccessOutcome second;
    access(second);
    const bool no_stale_bind = ok && !second.cache_hit;
    drain();

    // Access #3 rides the (possibly swapped) cache entry.
    runtime::AccessOutcome third;
    access(third);

    const runtime::AnytimeTelemetry& t = fw.server().anytime_telemetry();
    const double second_score = planner::plan_primary_score(
        planner::Objective::kMinLatency, second.plan.metrics);
    const double third_score = planner::plan_primary_score(
        planner::Objective::kMinLatency, third.plan.metrics);
    bool monotonic = third_score <= second_score + 1e-12;
    for (std::size_t i = 1; i < t.swap_primary_scores.size(); ++i) {
      monotonic = monotonic &&
                  t.swap_primary_scores[i] <= t.swap_primary_scores[i - 1];
    }

    const bool gate_passed = ok && incumbent_valid && no_stale_bind &&
                             t.discarded_stale >= 1 &&
                             t.nonmonotonic_refused == 0 && monotonic &&
                             third.cache_hit;
    all_gates_passed = all_gates_passed && gate_passed;

    std::printf(
        "D: anytime on %zu nodes: truncated %.6f s -> served %.6f s, "
        "%llu jobs, %llu swaps, %llu stale-discarded, %llu no-better\n",
        n, second_score, third_score,
        static_cast<unsigned long long>(t.jobs_enqueued),
        static_cast<unsigned long long>(t.improved_swaps),
        static_cast<unsigned long long>(t.discarded_stale),
        static_cast<unsigned long long>(t.no_better));

    json.add("anytime_nodes", static_cast<std::uint64_t>(n));
    json.add("anytime_deadline_hit", incumbent_valid);
    json.add("anytime_jobs_enqueued", t.jobs_enqueued);
    json.add("anytime_improved_swaps", t.improved_swaps);
    json.add("anytime_discarded_stale", t.discarded_stale);
    json.add("anytime_no_better", t.no_better);
    json.add("anytime_nonmonotonic_refused", t.nonmonotonic_refused);
    json.add("anytime_truncated_score_s", second_score);
    json.add("anytime_served_score_s", third_score);
    json.add("anytime_zero_stale_binds", no_stale_bind);
    json.add("anytime_gate_passed", gate_passed);
    if (!gate_passed) {
      std::fprintf(stderr, "planner_scaling: anytime contract gate failed\n");
    }
  }

  json.add("all_gates_passed", all_gates_passed);
  json.write();
  return all_gates_passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: planner_scaling [--smoke]\n");
      return 2;
    }
  }
  return run_bench(smoke);
}
