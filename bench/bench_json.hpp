// Machine-readable bench results (EXPERIMENTS.md "Machine-readable
// results"): each bench binary emits a flat JSON object to
// BENCH_<name>.json — bench name, parameters, measured wall seconds and
// throughput — so experiment drivers can diff runs without scraping stdout.
//
// Output directory resolution: $PSF_BENCH_JSON_DIR when set, else the
// repository root baked in at configure time (PSF_BENCH_OUTPUT_DIR), else
// the current working directory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace psf::bench {

class JsonResult {
 public:
  explicit JsonResult(std::string name) : name_(std::move(name)) {
    fields_.emplace_back("name", quote(name_));
  }

  void add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quote(value));
  }
  void add(const std::string& key, const char* value) {
    fields_.emplace_back(key, quote(value));
  }
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    fields_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  std::string path() const {
    std::string dir;
    if (const char* env = std::getenv("PSF_BENCH_JSON_DIR")) {
      dir = env;
    } else {
#ifdef PSF_BENCH_OUTPUT_DIR
      dir = PSF_BENCH_OUTPUT_DIR;
#else
      dir = ".";
#endif
    }
    return dir + "/BENCH_" + name_ + ".json";
  }

  // Writes the object; returns false (with a note on stderr) when the file
  // cannot be opened. Benches report but do not fail on write errors, so a
  // read-only checkout still runs.
  bool write() const {
    const std::string file = path();
    std::FILE* out = std::fopen(file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", file.c_str());
      return false;
    }
    std::fprintf(out, "{");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(out, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   fields_[i].first.c_str(), fields_[i].second.c_str());
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", file.c_str());
    return true;
  }

 private:
  static std::string quote(const std::string& raw) {
    std::string out = "\"";
    for (char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;  // key → rendered
};

}  // namespace psf::bench
