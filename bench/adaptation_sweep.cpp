// E12 (adaptation) — the closed monitor -> repair -> live-cutover loop under
// three reference disturbance schedules, each exercising a different
// violation class against the tracked San Diego mail deployment:
//
//   flash-crowd          extra clients pile onto the shared view, then the
//                        host's capacity is squeezed below the view's
//                        footprint (load-over-capacity) while a FaultPlan
//                        partition window stresses the retry layer;
//   rolling-maintenance  nodes are drained one after another (synthetic
//                        node-death violations) and the deployment walks off
//                        each before being allowed back;
//   link-brownout        the SD<->NY WAN link's latency creeps up in steps —
//                        the first within the controller's slack (no churn),
//                        the later ones past it (link-degradation repairs).
//
// Acceptance gates (exit nonzero on failure):
//   1. every workload run finishes and delivers ALL requests (ratio 1.0,
//      retries bridging each cutover);
//   2. every scenario repairs at least once; flash-crowd and
//      rolling-maintenance move component state live (sync-then-cutover);
//   3. p50 incremental-repair planning wall <= 25% of the p50 cold-plan
//      wall measured on the same host;
//   4. each scenario is bit-identical across two executions with the same
//      FaultPlan seed (every simulation-domain counter compared; host
//      wall-clock samples excluded).
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/case_study.hpp"
#include "core/fault_plan.hpp"
#include "core/framework.hpp"
#include "core/workload.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "runtime/adaptation.hpp"

using namespace psf;

namespace {

constexpr std::uint64_t kPlanSeed = 0xADA975EEDULL;

enum class Scenario { kFlashCrowd, kRollingMaintenance, kLinkBrownout };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kFlashCrowd: return "flash_crowd";
    case Scenario::kRollingMaintenance: return "rolling_maintenance";
    case Scenario::kLinkBrownout: return "link_brownout";
  }
  return "unknown";
}

struct ScenarioResult {
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  // Counters compared for bit-identity between same-seed runs.
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_unroutable = 0;
  std::uint64_t invoke_timeouts = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t rebinds = 0;
  std::uint64_t events_observed = 0;
  std::uint64_t checks = 0;
  std::uint64_t repairs_triggered = 0;
  std::uint64_t repaired = 0;
  std::uint64_t unsatisfiable = 0;
  std::uint64_t controller_failed = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t instances_retired = 0;
  std::uint64_t state_transfer_bytes = 0;
  bool all_finished = false;
  // Host wall-clock (NOT part of the determinism comparison).
  double cold_plan_wall_ms = 0.0;
  std::vector<double> repair_wall_ms;

  double delivered_ratio() const {
    const std::uint64_t total = ops_ok + ops_failed;
    return total == 0 ? 0.0 : static_cast<double>(ops_ok) /
                                  static_cast<double>(total);
  }
  bool identical_to(const ScenarioResult& o) const {
    return ops_ok == o.ops_ok && ops_failed == o.ops_failed &&
           messages_sent == o.messages_sent &&
           messages_dropped == o.messages_dropped &&
           messages_unroutable == o.messages_unroutable &&
           invoke_timeouts == o.invoke_timeouts && attempts == o.attempts &&
           retries == o.retries && rebinds == o.rebinds &&
           events_observed == o.events_observed && checks == o.checks &&
           repairs_triggered == o.repairs_triggered &&
           repaired == o.repaired && unsatisfiable == o.unsatisfiable &&
           controller_failed == o.controller_failed &&
           state_transfers == o.state_transfers &&
           instances_retired == o.instances_retired &&
           state_transfer_bytes == o.state_transfer_bytes;
  }
};

struct Client {
  std::unique_ptr<runtime::GenericProxy> proxy;
  std::unique_ptr<core::WorkloadClient> workload;
};

ScenarioResult run_scenario(Scenario which, std::uint64_t seed) {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);
  auto config = std::make_shared<mail::MailServiceConfig>();
  if (!mail::register_mail_factories(fw.runtime().factories(), config)
           .is_ok() ||
      !fw.register_service(mail::mail_registration(sites.mail_home),
                           mail::mail_translator())
           .is_ok()) {
    std::fprintf(stderr, "adaptation_sweep: service registration failed\n");
    return {};
  }
  runtime::AdaptationParams params;
  params.drain = sim::Duration::from_millis(300);
  runtime::AdaptationController ctl(fw.runtime(), fw.server(), fw.monitor(),
                                    "SecureMail", params);

  auto bind_proxy = [&fw](net::NodeId node, std::int64_t trust,
                          double rate_rps,
                          planner::PlanRequest* out_request = nullptr) {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(trust));
    request.request_rate_rps = rate_rps;
    if (out_request != nullptr) *out_request = request;
    auto proxy = fw.make_proxy(node, "SecureMail", request);
    bool done = false;
    bool ok = false;
    proxy->bind([&](util::Status st) {
      ok = st.is_ok();
      done = true;
    });
    fw.run_until_condition([&done]() { return done; },
                           sim::Duration::from_seconds(300));
    if (!ok) proxy.reset();
    return proxy;
  };

  // Seed bind from the SD client at the reference 50 rps (entry 1000 +
  // co-located view 3000 cpu units): pool is still empty (only the static
  // MailServer), so its planning wall is the cold-plan reference sample.
  planner::PlanRequest seed_request;
  auto seed_proxy = bind_proxy(sites.sd_client, 4, 50.0, &seed_request);
  if (!seed_proxy) {
    std::fprintf(stderr, "adaptation_sweep: seed bind failed\n");
    return {};
  }
  ScenarioResult result;
  result.cold_plan_wall_ms =
      seed_proxy->outcome().costs.planning_wall_seconds * 1e3;
  seed_request.client_node = sites.sd_client;
  ctl.track(seed_proxy->outcome(), seed_request);

  struct Spec {
    net::NodeId node;
    std::int64_t trust;
    const char* user;
  };
  std::vector<Spec> specs = {{sites.san_diego[0], 4, "u-sd0"}};
  if (which != Scenario::kLinkBrownout) {
    specs.push_back({sites.san_diego[1], 4, "u-sd1"});
  }
  if (which == Scenario::kFlashCrowd) {
    specs.push_back({sites.sea_client, 2, "u-sea"});
  }

  std::vector<Client> clients;
  for (const Spec& spec : specs) {
    Client client;
    client.proxy = bind_proxy(spec.node, spec.trust, 25.0);
    if (!client.proxy) {
      std::fprintf(stderr, "adaptation_sweep: bind for %s failed\n",
                   spec.user);
      return {};
    }
    clients.push_back(std::move(client));
  }

  // Retries bridge every cutover window; the generous attempt timeout keeps
  // the browned-out WAN from turning slowness into spurious failures.
  runtime::RetryPolicy policy;
  policy.attempt_timeout = sim::Duration::from_seconds(5);
  policy.backoff_base = sim::Duration::from_millis(200);
  policy.backoff_cap = sim::Duration::from_seconds(1);
  policy.max_attempts = 10;
  policy.rebind_on_unreachable = true;
  for (Client& client : clients) {
    client.proxy->enable_retries(policy, &fw.retry_telemetry());
  }

  core::WorkloadParams wl_params;
  wl_params.sends = 40;
  wl_params.receives = 8;
  wl_params.think = sim::Duration::from_millis(150);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const Spec& spec = specs[i];
    config->keys->provision_user(spec.user, mail::kMaxSensitivity);
    runtime::GenericProxy* proxy = clients[i].proxy.get();
    clients[i].workload = std::make_unique<core::WorkloadClient>(
        fw.runtime(), spec.user, config,
        [proxy](runtime::Request request, runtime::ResponseCallback done) {
          proxy->invoke(std::move(request), std::move(done));
        },
        wl_params);
  }

  switch (which) {
    case Scenario::kFlashCrowd: {
      // The crowd is already bound; squeeze the view's host below the
      // view's footprint, then stress the repaired deployment with a
      // partition window from the reference fault plan.
      fw.monitor().schedule_change(
          sim::Duration::from_seconds(2),
          [&sites](runtime::NetworkMonitor& m) {
            m.set_node_capacity(sites.sd_client, 3.5e3);
          });
      std::vector<net::NodeId> others = sites.new_york;
      others.insert(others.end(), sites.seattle.begin(),
                    sites.seattle.end());
      core::FaultPlan plan(seed);
      plan.partition_window(sim::Duration::from_seconds(4),
                            sim::Duration::from_millis(800), sites.san_diego,
                            others);
      plan.arm(fw);
      break;
    }
    case Scenario::kRollingMaintenance: {
      // Drain the client node (view + encryptor walk off), let it back in,
      // then drain wherever the view landed.
      fw.simulator().schedule(sim::Duration::from_seconds(2),
                              [&ctl, &sites] {
                                ctl.drain_node(sites.sd_client);
                              });
      fw.simulator().schedule(sim::Duration::from_seconds(5),
                              [&ctl, &sites] {
                                ctl.undrain_node(sites.sd_client);
                              });
      fw.simulator().schedule(sim::Duration::from_seconds(6), [&ctl, &sites] {
        const auto& outcome = ctl.current_outcome(0);
        for (const auto& p : outcome.plan.placements) {
          if (p.component->name == "ViewMailServer" &&
              p.node != sites.sd_client) {
            ctl.drain_node(p.node);
            return;
          }
        }
      });
      break;
    }
    case Scenario::kLinkBrownout: {
      auto lid = fw.network().link_between(sites.san_diego[0],
                                           sites.new_york[0]);
      if (!lid.has_value()) {
        std::fprintf(stderr, "adaptation_sweep: no SD<->NY WAN link\n");
        return {};
      }
      const net::LinkId wan = *lid;
      auto step = [&fw, wan](double at_s, std::int64_t ms) {
        fw.monitor().schedule_change(
            sim::Duration::from_millis(static_cast<std::int64_t>(at_s * 1e3)),
            [wan, ms](runtime::NetworkMonitor& m) {
              m.set_link_latency(wan, sim::Duration::from_millis(ms));
            });
      };
      step(2.0, 120);   // within the 1.5x slack: still-valid, no churn
      step(3.0, 200);   // past slack vs the 100 ms plan: first repair
      step(4.5, 450);   // past slack vs the repaired assumption: second
      break;
    }
  }

  for (Client& client : clients) client.workload->start();
  const bool all_finished = fw.run_until_condition(
      [&clients]() {
        for (const Client& client : clients) {
          if (!client.workload->finished()) return false;
        }
        return true;
      },
      sim::Duration::from_seconds(300));

  for (const Client& client : clients) {
    const core::WorkloadStats& wl = client.workload->stats();
    result.ops_ok += wl.sends_ok + wl.receives_ok;
    result.ops_failed += wl.sends_failed + wl.receives_failed;
  }
  const runtime::RuntimeStats& stats = fw.runtime().stats();
  result.messages_sent = stats.messages_sent;
  result.messages_dropped = stats.messages_dropped;
  result.messages_unroutable = stats.messages_unroutable;
  result.invoke_timeouts = stats.invoke_timeouts;
  result.state_transfer_bytes = stats.state_transfer_bytes;
  result.attempts = fw.retry_telemetry().attempts;
  result.retries = fw.retry_telemetry().retries;
  result.rebinds = fw.retry_telemetry().rebinds;
  const runtime::AdaptationStats& cs = ctl.stats();
  result.events_observed = cs.events_observed;
  result.checks = cs.checks;
  result.repairs_triggered = cs.repairs_triggered;
  result.repaired = cs.repaired;
  result.unsatisfiable = cs.unsatisfiable;
  result.controller_failed = cs.failed;
  result.state_transfers = cs.state_transfers;
  result.instances_retired = cs.instances_retired;
  util::SampleSet walls = fw.server().repair_telemetry().repair_wall_ms;
  for (std::size_t i = 0; i < walls.count(); ++i) {
    result.repair_wall_ms.push_back(walls.samples()[i]);
  }
  result.all_finished = all_finished;
  return result;
}

}  // namespace

int main() {
  std::printf(
      "=== Adaptation sweep (flash crowd / rolling maintenance / "
      "link brownout, seed %llu) ===\n",
      static_cast<unsigned long long>(kPlanSeed));

  const Scenario scenarios[] = {Scenario::kFlashCrowd,
                                Scenario::kRollingMaintenance,
                                Scenario::kLinkBrownout};
  // Untimed warm-up: first-touch page faults and allocator growth would
  // otherwise land in the first run's wall samples.
  (void)run_scenario(Scenario::kFlashCrowd, kPlanSeed);
  ScenarioResult first[3];
  ScenarioResult replay[3];
  util::SampleSet repair_walls;
  util::SampleSet cold_walls;
  const auto collect = [&](const ScenarioResult& r) {
    for (double w : r.repair_wall_ms) repair_walls.add(w);
    cold_walls.add(r.cold_plan_wall_ms);
  };
  for (int i = 0; i < 3; ++i) {
    first[i] = run_scenario(scenarios[i], kPlanSeed);
    collect(first[i]);
  }
  // Three replay rounds: round 0 doubles as the bit-identical check, and
  // every round contributes wall samples — individual repair searches are
  // sub-millisecond, so the p50 needs more than a handful of samples to
  // resist scheduler noise on a single-CPU host.
  constexpr int kReplayRounds = 3;
  for (int round = 0; round < kReplayRounds; ++round) {
    for (int i = 0; i < 3; ++i) {
      ScenarioResult r = run_scenario(scenarios[i], kPlanSeed);
      collect(r);
      if (round == 0) replay[i] = std::move(r);
    }
  }
  const double repair_p50_ms = repair_walls.percentile(50.0);
  const double cold_p50_ms = cold_walls.percentile(50.0);
  const double repair_to_cold =
      cold_p50_ms > 0.0 ? repair_p50_ms / cold_p50_ms : 1.0;

  for (int i = 0; i < 3; ++i) {
    const ScenarioResult& r = first[i];
    std::printf(
        "%-20s ok %4llu fail %3llu ratio %.3f | repairs %llu/%llu "
        "transfers %llu bytes %llu retired %llu | retries %llu rebinds "
        "%llu\n",
        scenario_name(scenarios[i]),
        static_cast<unsigned long long>(r.ops_ok),
        static_cast<unsigned long long>(r.ops_failed), r.delivered_ratio(),
        static_cast<unsigned long long>(r.repaired),
        static_cast<unsigned long long>(r.repairs_triggered),
        static_cast<unsigned long long>(r.state_transfers),
        static_cast<unsigned long long>(r.state_transfer_bytes),
        static_cast<unsigned long long>(r.instances_retired),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.rebinds));
  }
  std::printf("repair walls (ms):");
  for (std::size_t i = 0; i < repair_walls.count(); ++i) {
    std::printf(" %.3f", repair_walls.samples()[i]);
  }
  std::printf("\ncold walls (ms):");
  for (std::size_t i = 0; i < cold_walls.count(); ++i) {
    std::printf(" %.3f", cold_walls.samples()[i]);
  }
  std::printf("\nrepair p50 %.3fms cold p50 %.3fms ratio %.3f\n",
              repair_p50_ms, cold_p50_ms, repair_to_cold);

  bool deterministic = true;
  for (int i = 0; i < 3; ++i) {
    deterministic = deterministic && first[i].identical_to(replay[i]);
  }

  bool pass = true;
  auto gate = [&pass](bool ok, const char* what) {
    std::printf("gate %-40s %s\n", what, ok ? "PASS" : "FAIL");
    pass = pass && ok;
  };
  for (int i = 0; i < 3; ++i) {
    std::string label = scenario_name(scenarios[i]);
    gate(first[i].all_finished && replay[i].all_finished,
         (label + " ran to completion").c_str());
    gate(first[i].delivered_ratio() == 1.0,
         (label + " delivered ratio == 1.0").c_str());
    gate(first[i].repaired >= 1, (label + " repaired >= 1").c_str());
  }
  gate(first[0].state_transfers >= 1 && first[0].state_transfer_bytes > 0,
       "flash crowd migrated live state");
  gate(first[1].state_transfers >= 1,
       "rolling maintenance migrated live state");
  gate(repair_walls.count() > 0 && repair_to_cold <= 0.25,
       "repair p50 <= 25% of cold-plan p50");
  gate(deterministic, "same seed is bit-identical");

  bench::JsonResult json("adaptation_sweep");
  json.add("plan_seed", static_cast<std::uint64_t>(kPlanSeed));
  for (int i = 0; i < 3; ++i) {
    const std::string prefix = scenario_name(scenarios[i]);
    const ScenarioResult& r = first[i];
    json.add(prefix + "_ops_ok", r.ops_ok);
    json.add(prefix + "_ops_failed", r.ops_failed);
    json.add(prefix + "_delivered_ratio", r.delivered_ratio());
    json.add(prefix + "_repairs_triggered", r.repairs_triggered);
    json.add(prefix + "_repaired", r.repaired);
    json.add(prefix + "_unsatisfiable", r.unsatisfiable);
    json.add(prefix + "_state_transfers", r.state_transfers);
    json.add(prefix + "_state_transfer_bytes", r.state_transfer_bytes);
    json.add(prefix + "_instances_retired", r.instances_retired);
    json.add(prefix + "_retries", r.retries);
    json.add(prefix + "_rebinds", r.rebinds);
  }
  json.add("repair_p50_ms", repair_p50_ms);
  json.add("cold_plan_p50_ms", cold_p50_ms);
  json.add("repair_to_cold_ratio", repair_to_cold);
  json.add("repair_samples", static_cast<std::uint64_t>(repair_walls.count()));
  json.add("deterministic", deterministic);
  json.add("gates_pass", pass);
  json.write();

  return pass ? 0 : 1;
}
