// E6 (ablation) — the coherence data-path design space of §3.2: how the
// view's consistency policy, flush window, write coalescing, and directory
// fan-out batching trade client-perceived send latency against staleness
// (updates waiting at the replica) and WAN traffic.
//
// Deployment under test (hand-wired, mirroring the SS scenarios plus the
// Seattle partner site): MailClient×3 @SD -> ViewMailServer@SD (trust 4) ->
// Encryptor@SD -> Decryptor@NY -> MailServer@NY, with a second
// ViewMailServer@Seattle (trust 2) hanging off the San Diego view. The
// Seattle replica is what gives the home directory real fan-out work: every
// sync batch the SD view writes back is re-pushed to Seattle — one RPC per
// update on the legacy path, one multi-update RPC per epoch when batched.
//
// 20% of sends are high-sensitivity (forwarded past the views to the home),
// so the home also pushes direct traffic back out to both replicas.
//
// Acceptance gates (exit nonzero on failure):
//   1. batched directory fan-out sends >= 2x fewer push RPCs than the
//      legacy per-update path at time-500ms and time-1000ms;
//   2. count-25 with flush window 4 has lower client p95 send latency than
//      the same policy stop-and-wait (window 1);
//   3. write-through with window 1 is bit-identical in replica flush
//      counts/bytes across legacy and batched directory tunings (the
//      write-through-equivalence invariant, DESIGN.md §coherence).
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "bench_json.hpp"
#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "core/scenarios.hpp"
#include "core/workload.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/view_server.hpp"

using namespace psf;

namespace {

struct SweepResult {
  double mean_send_ms = 0.0;
  double p95_send_ms = 0.0;
  core::CoherenceSummary coherence;
};

SweepResult run_config(const coherence::CoherencePolicy& policy,
                       const coherence::DirectoryTuning& tuning,
                       std::size_t clients) {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);
  auto config = std::make_shared<mail::MailServiceConfig>();
  config->view_policy = policy;
  config->directory_tuning = tuning;
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  PSF_CHECK(fw.register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator())
                .is_ok());

  runtime::SmockRuntime& rt = fw.runtime();
  const spec::ServiceSpec* spec = fw.server().service_spec("SecureMail");
  PSF_CHECK(spec != nullptr);
  const auto& existing = fw.server().existing_instances("SecureMail");
  PSF_CHECK(existing.size() == 1);
  const runtime::RuntimeInstanceId mail_server = existing[0].runtime_id;

  auto install = [&](const std::string& component, net::NodeId node,
                     planner::FactorBindings factors =
                         {}) -> runtime::RuntimeInstanceId {
    const spec::ComponentDef* def = spec->find_component(component);
    PSF_CHECK(def != nullptr);
    runtime::RuntimeInstanceId out = 0;
    rt.install(*def, node, std::move(factors), node,
               [&out](util::Expected<runtime::RuntimeInstanceId> id) {
                 PSF_CHECK_MSG(id.has_value(), id.status().to_string());
                 out = *id;
               });
    fw.run_until_condition([&out]() { return out != 0; },
                           sim::Duration::from_seconds(60));
    PSF_CHECK(out != 0);
    return out;
  };

  // Server-side chain + the two view replicas.
  const runtime::RuntimeInstanceId decryptor =
      install("Decryptor", sites.mail_home);
  const runtime::RuntimeInstanceId encryptor =
      install("Encryptor", sites.sd_client);
  planner::FactorBindings sd_factors;
  sd_factors.values["TrustLevel"] = spec::PropertyValue::integer(4);
  const runtime::RuntimeInstanceId view_sd =
      install("ViewMailServer", sites.sd_client, sd_factors);
  planner::FactorBindings sea_factors;
  sea_factors.values["TrustLevel"] = spec::PropertyValue::integer(2);
  const runtime::RuntimeInstanceId view_sea =
      install("ViewMailServer", sites.sea_client, sea_factors);

  PSF_CHECK(rt.wire(decryptor, "ServerInterface", mail_server).is_ok());
  PSF_CHECK(rt.wire(encryptor, "DecryptorInterface", decryptor).is_ok());
  PSF_CHECK(rt.wire(view_sd, "ServerInterface", encryptor).is_ok());
  PSF_CHECK(rt.wire(view_sea, "ServerInterface", view_sd).is_ok());
  PSF_CHECK(rt.start(decryptor).is_ok());
  PSF_CHECK(rt.start(encryptor).is_ok());
  PSF_CHECK(rt.start(view_sd).is_ok());
  PSF_CHECK(rt.start(view_sea).is_ok());
  // Let both replica registrations round-trip (Seattle's relays through the
  // San Diego view to the home).
  fw.run_for(sim::Duration::from_seconds(5));

  std::vector<runtime::RuntimeInstanceId> entries;
  for (std::size_t c = 0; c < clients; ++c) {
    const runtime::RuntimeInstanceId mc =
        install("MailClient", sites.sd_client);
    PSF_CHECK(rt.wire(mc, "ServerInterface", view_sd).is_ok());
    PSF_CHECK(rt.start(mc).is_ok());
    entries.push_back(mc);
  }
  fw.run_for(sim::Duration::from_seconds(1));

  core::WorkloadParams params;
  params.high_send_every = 5;  // 20% of sends forwarded to the home
  std::vector<std::unique_ptr<core::WorkloadClient>> workers;
  for (std::size_t c = 0; c < clients; ++c) {
    const runtime::RuntimeInstanceId entry = entries[c];
    runtime::SmockRuntime* rtp = &rt;
    const net::NodeId from = sites.sd_client;
    workers.push_back(std::make_unique<core::WorkloadClient>(
        rt, "sweep-user-" + std::to_string(c), config,
        [rtp, from, entry](runtime::Request request,
                           runtime::ResponseCallback done) {
          rtp->invoke_from_node(from, entry, std::move(request),
                                std::move(done));
        },
        params));
  }
  for (auto& w : workers) w->start();
  auto all_done = [&workers]() {
    for (const auto& w : workers) {
      if (!w->finished()) return false;
    }
    return true;
  };
  PSF_CHECK(fw.run_until_condition(all_done, sim::Duration::from_seconds(600)));

  SweepResult result;
  double weighted = 0.0;
  std::size_t total = 0;
  double p95 = 0.0;
  for (auto& w : workers) {
    auto& s = w->send_latency_ms();
    weighted += s.mean() * static_cast<double>(s.count());
    total += s.count();
    p95 += s.percentile(95);
  }
  result.mean_send_ms = weighted / static_cast<double>(total);
  result.p95_send_ms = p95 / static_cast<double>(workers.size());
  result.coherence = core::collect_coherence_summary(rt);
  return result;
}

}  // namespace

int main() {
  struct Row {
    const char* label;
    coherence::CoherencePolicy policy;
    coherence::DirectoryTuning tuning;
  };
  coherence::DirectoryTuning batched;  // default: batch_fanout = true
  coherence::DirectoryTuning legacy;
  legacy.batch_fanout = false;

  const Row rows[] = {
      {"none", coherence::CoherencePolicy::none(), batched},
      {"wt/legacy", coherence::CoherencePolicy::write_through(), legacy},
      {"wt/batched", coherence::CoherencePolicy::write_through(), batched},
      {"count-25", coherence::CoherencePolicy::count_based(25), batched},
      {"count-25+w4",
       coherence::CoherencePolicy::count_based(25).windowed(4), batched},
      {"count-100", coherence::CoherencePolicy::count_based(100), batched},
      {"t500/legacy",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(500)),
       legacy},
      {"t500/batched",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(500)),
       batched},
      {"t500+coalesce",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(500))
           .coalescing(),
       batched},
      {"t1000/legacy",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(1000)),
       legacy},
      {"t1000/batched",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(1000)),
       batched},
      {"t2000/batched",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(2000)),
       batched},
  };

  std::printf("=== Coherence data-path sweep (SD deployment + Seattle "
              "replica, 3 clients, 300 sends, 20%% high-sensitivity) ===\n");
  std::printf("%-14s %11s %11s %8s %11s %6s %8s %10s %10s %9s\n", "policy",
              "mean send", "p95 send", "flushes", "sync bytes", "stale",
              "pushRPCs", "rpcsSaved", "blockedMs", "coalesced");
  std::map<std::string, SweepResult> results;
  bench::JsonResult json("coherence_sweep");
  json.add("clients", 3);
  json.add("sends_per_client", std::uint64_t{100});
  for (const Row& row : rows) {
    const SweepResult r = run_config(row.policy, row.tuning, 3);
    results[row.label] = r;
    const auto& co = r.coherence;
    std::printf("%-14s %9.3fms %9.3fms %8llu %11llu %6zu %8llu %10llu %9.1f "
                "%9llu\n",
                row.label, r.mean_send_ms, r.p95_send_ms,
                static_cast<unsigned long long>(co.flushes),
                static_cast<unsigned long long>(co.bytes_flushed),
                co.residual_pending,
                static_cast<unsigned long long>(co.push_rpcs),
                static_cast<unsigned long long>(co.push_rpcs_saved),
                co.blocked_on_flush_ms,
                static_cast<unsigned long long>(co.updates_coalesced));
    std::fflush(stdout);
    std::string key = row.label;
    for (char& ch : key) {
      if (ch == '-' || ch == '/' || ch == '+') ch = '_';
    }
    json.add(key + "_mean_ms", r.mean_send_ms);
    json.add(key + "_p95_ms", r.p95_send_ms);
    json.add(key + "_flushes", co.flushes);
    json.add(key + "_bytes_flushed", co.bytes_flushed);
    json.add(key + "_push_rpcs", co.push_rpcs);
    json.add(key + "_push_rpcs_saved", co.push_rpcs_saved);
    json.add(key + "_blocked_ms", co.blocked_on_flush_ms);
    json.add(key + "_updates_coalesced", co.updates_coalesced);
  }

  // ---- acceptance gates ---------------------------------------------------
  bool ok = true;
  auto gate = [&ok](const char* name, bool held) {
    std::printf("gate %-44s %s\n", name, held ? "HOLDS" : "VIOLATED");
    ok &= held;
  };
  std::printf("\n");
  const auto& t500l = results["t500/legacy"].coherence;
  const auto& t500b = results["t500/batched"].coherence;
  const auto& t1000l = results["t1000/legacy"].coherence;
  const auto& t1000b = results["t1000/batched"].coherence;
  gate("batching >= 2x fewer push RPCs (time-500ms)",
       t500b.push_rpcs * 2 <= t500l.push_rpcs);
  gate("batching >= 2x fewer push RPCs (time-1000ms)",
       t1000b.push_rpcs * 2 <= t1000l.push_rpcs);
  gate("window 4 lowers p95 send latency (count-25)",
       results["count-25+w4"].p95_send_ms < results["count-25"].p95_send_ms);
  const auto& wtl = results["wt/legacy"].coherence;
  const auto& wtb = results["wt/batched"].coherence;
  gate("write-through w1 flush counts/bytes bit-identical",
       wtl.flushes == wtb.flushes && wtl.bytes_flushed == wtb.bytes_flushed &&
           wtl.updates_flushed == wtb.updates_flushed);
  json.add("gate_batching_t500", t500b.push_rpcs * 2 <= t500l.push_rpcs);
  json.add("gate_batching_t1000", t1000b.push_rpcs * 2 <= t1000l.push_rpcs);
  json.add("gate_window_p95",
           results["count-25+w4"].p95_send_ms < results["count-25"].p95_send_ms);
  json.add("gate_wt_equivalence",
           wtl.flushes == wtb.flushes && wtl.bytes_flushed == wtb.bytes_flushed);
  json.add("gates_ok", ok);
  json.write();

  std::printf("\nreading: tighter consistency (write-through, short periods) "
              "raises send latency; looser policies leave more unpropagated "
              "state at the replica. Fan-out batching collapses the home's "
              "per-update re-push storm into one RPC per epoch; a flush "
              "window > 1 removes the stop-and-wait stall from count/write-"
              "through policies; coalescing trades staleness-bytes for "
              "lost intermediate writes (LWW).\n");
  return ok ? 0 : 1;
}
