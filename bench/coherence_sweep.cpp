// E6 (ablation) — the coherence design space of §3.2: how the view's
// consistency policy trades client-perceived send latency against staleness
// (updates waiting at the replica) and WAN traffic. Sweeps policy kind and
// period/threshold on the San Diego deployment.
#include <cstdio>
#include <memory>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "core/workload.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"
#include "mail/view_server.hpp"

using namespace psf;

namespace {

struct SweepResult {
  double mean_send_ms = 0.0;
  double p95_send_ms = 0.0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_flushed = 0;
  std::size_t residual_pending = 0;  // staleness at end of run
};

SweepResult run_policy(const coherence::CoherencePolicy& policy,
                       std::size_t clients) {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);
  auto config = std::make_shared<mail::MailServiceConfig>();
  config->view_policy = policy;
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  PSF_CHECK(fw.register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator())
                .is_ok());

  // Bind one proxy per client at the San Diego site.
  planner::PlanRequest defaults;
  defaults.interface_name = "ClientInterface";
  defaults.required_properties.emplace_back("TrustLevel",
                                            spec::PropertyValue::integer(4));
  defaults.request_rate_rps = 50.0;

  std::vector<std::unique_ptr<runtime::GenericProxy>> proxies;
  for (std::size_t c = 0; c < clients; ++c) {
    auto proxy = fw.make_proxy(sites.sd_client, "SecureMail", defaults);
    bool done = false;
    util::Status status = util::internal_error("");
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw.run_until_condition([&done]() { return done; },
                           sim::Duration::from_seconds(300));
    PSF_CHECK_MSG(status.is_ok(), status.to_string());
    proxies.push_back(std::move(proxy));
  }

  std::vector<std::unique_ptr<core::WorkloadClient>> workers;
  core::WorkloadParams params;
  for (std::size_t c = 0; c < clients; ++c) {
    runtime::GenericProxy* proxy = proxies[c].get();
    workers.push_back(std::make_unique<core::WorkloadClient>(
        fw.runtime(), "sweep-user-" + std::to_string(c), config,
        [proxy](runtime::Request request, runtime::ResponseCallback done) {
          proxy->invoke(std::move(request), std::move(done));
        },
        params));
  }
  for (auto& w : workers) w->start();
  auto all_done = [&workers]() {
    for (const auto& w : workers) {
      if (!w->finished()) return false;
    }
    return true;
  };
  PSF_CHECK(fw.run_until_condition(all_done, sim::Duration::from_seconds(600)));

  SweepResult result;
  double weighted = 0.0;
  std::size_t total = 0;
  double p95 = 0.0;
  for (auto& w : workers) {
    auto& s = w->send_latency_ms();
    weighted += s.mean() * static_cast<double>(s.count());
    total += s.count();
    p95 += s.percentile(95);
  }
  result.mean_send_ms = weighted / static_cast<double>(total);
  result.p95_send_ms = p95 / static_cast<double>(workers.size());

  // Find the San Diego view and read its coherence stats.
  for (const auto& inst : fw.server().existing_instances("SecureMail")) {
    if (inst.component->name != "ViewMailServer") continue;
    auto* view = dynamic_cast<mail::ViewMailServerComponent*>(
        fw.runtime().instance(inst.runtime_id).component.get());
    if (view == nullptr || view->replica_coherence() == nullptr) continue;
    result.flushes += view->replica_coherence()->stats().flushes;
    result.bytes_flushed += view->replica_coherence()->stats().bytes_flushed;
    result.residual_pending += view->replica_coherence()->pending();
  }
  return result;
}

}  // namespace

int main() {
  struct Row {
    const char* label;
    coherence::CoherencePolicy policy;
  };
  const Row rows[] = {
      {"none", coherence::CoherencePolicy::none()},
      {"write-through", coherence::CoherencePolicy::write_through()},
      {"count-25", coherence::CoherencePolicy::count_based(25)},
      {"count-100", coherence::CoherencePolicy::count_based(100)},
      {"time-250ms",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(250))},
      {"time-500ms",
       coherence::CoherencePolicy::time_based(sim::Duration::from_millis(500))},
      {"time-1000ms", coherence::CoherencePolicy::time_based(
                          sim::Duration::from_millis(1000))},
      {"time-2000ms", coherence::CoherencePolicy::time_based(
                          sim::Duration::from_millis(2000))},
  };

  std::printf("=== Coherence policy sweep (San Diego deployment, 3 clients, "
              "300 sends) ===\n");
  std::printf("%-14s %12s %12s %9s %12s %10s\n", "policy", "mean send",
              "p95 send", "flushes", "sync bytes", "stale left");
  for (const Row& row : rows) {
    const SweepResult r = run_policy(row.policy, 3);
    std::printf("%-14s %10.3fms %10.3fms %9llu %12llu %10zu\n", row.label,
                r.mean_send_ms, r.p95_send_ms,
                static_cast<unsigned long long>(r.flushes),
                static_cast<unsigned long long>(r.bytes_flushed),
                r.residual_pending);
  }
  std::printf("\nreading: tighter consistency (write-through, short periods) "
              "raises send latency; looser policies leave more unpropagated "
              "state at the replica.\n");
  return 0;
}
