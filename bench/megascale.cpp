// Megascale engine bench (EXPERIMENTS.md E10).
//
// Drives the region-parallel engine with 100k+ clients over a 100+ node
// Waxman topology and reports:
//   - sustained events/sec and requests/sec (serial and multi-worker);
//   - bytes of resident memory per client;
//   - allocator calls per event, new SmallFn/slab event path vs a
//     std::function baseline replicating the seed simulator's behavior;
//   - determinism: the parallel run must reproduce the serial run's
//     counters exactly (and, in smoke mode, its full event trace).
//
// Modes:
//   megascale            full run, writes BENCH_megascale.json
//   megascale --smoke    reduced 8-node/1k-client config for CI (tier-1
//                        ctest target), writes BENCH_megascale_smoke.json
//   --clients=N --workers=N override the defaults.
//
// The >= 2.5x speedup acceptance gate only applies where the hardware can
// express it; on hosts with fewer than 4 cores the gate is reported as
// skipped (speedup_gate_skipped=true) rather than silently passed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/megascale.hpp"
#include "sim/simulator.hpp"
#include "util/small_fn.hpp"

// ---- global allocation counter ---------------------------------------------
// Counts every operator-new in the process so the event hot path's allocator
// traffic can be measured directly, not inferred.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, a < sizeof(void*) ? sizeof(void*) : a,
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using psf::core::MegascaleConfig;
using psf::core::MegascaleReport;
using psf::core::MegascaleWorld;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now()  // detlint:allow(DET004 bench wall-clock)
                 .time_since_epoch())
      .count();
}

std::uint64_t vm_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %lu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

// ---- seed-behavior baseline event engine -----------------------------------
// Replicates the pre-overhaul simulator: std::function callbacks (heap
// allocation for captures over ~16 bytes) and an unbounded per-id tombstone
// vector. Used only to measure allocator calls per event for the reduction
// gate.

class BaselineEngine {
 public:
  using Fn = std::function<void()>;

  void schedule_at(std::int64_t when, Fn fn) {
    queue_.push(Event{when, next_id_++, std::move(fn)});
    cancelled_.push_back(false);  // grows forever, like the seed
  }

  std::int64_t now() const { return now_; }

  std::size_t run() {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (cancelled_[ev.id]) continue;
      now_ = ev.when;
      ev.fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    std::int64_t when;
    std::uint64_t id;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };
  std::int64_t now_ = 0;
  std::uint64_t next_id_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<bool> cancelled_;
};

// The event-chain microworkload: `chains` concurrent chains, each event
// re-scheduling its successor with a 24-byte capture (three 8-byte values —
// the shape of the runtime's per-hop transfer lambdas, which std::function
// heap-allocates and SmallFn stores inline).
template <typename Engine, typename Schedule>
std::uint64_t run_chain_workload(Engine& engine, Schedule schedule,
                                 std::size_t chains, std::size_t rounds) {
  struct Chain {
    std::uint64_t remaining;
    std::uint64_t counter = 0;
  };
  std::vector<Chain> state(chains, Chain{rounds});
  std::function<void(std::size_t)> step_fn;  // shared driver, not counted
  step_fn = [&](std::size_t c) {
    Chain* chain = &state[c];
    if (chain->remaining == 0) return;
    --chain->remaining;
    ++chain->counter;
    const std::uint64_t a = chain->counter;
    Chain* const p = chain;
    // 32-byte capture: the hot-path allocation being measured (heap for
    // std::function, inline for SmallFn).
    schedule(engine.now() + 1000, [c, a, p, &step_fn] {
      p->counter ^= a;
      step_fn(c);
    });
  };
  for (std::size_t c = 0; c < chains; ++c) step_fn(c);
  return engine.run();
}

struct AllocMeasurement {
  double baseline_per_event = 0.0;
  double engine_per_event = 0.0;
  double reduction = 0.0;
};

AllocMeasurement measure_allocs(std::size_t chains, std::size_t rounds) {
  AllocMeasurement m;
  {
    BaselineEngine engine;
    const std::uint64_t before = g_allocs.load();
    const std::uint64_t executed = run_chain_workload(
        engine,
        [&engine](std::int64_t when, auto fn) {
          engine.schedule_at(when, std::move(fn));
        },
        chains, rounds);
    m.baseline_per_event =
        static_cast<double>(g_allocs.load() - before) /
        static_cast<double>(executed);
  }
  {
    psf::sim::Simulator engine;
    const std::uint64_t before = g_allocs.load();
    std::uint64_t executed = 0;
    {
      struct Adapter {
        psf::sim::Simulator& sim;
        std::int64_t now() const { return sim.now().nanos(); }
        std::size_t run() { return sim.run(); }
      } adapter{engine};
      executed = run_chain_workload(
          adapter,
          [&engine](std::int64_t when, auto fn) {
            engine.schedule_at(psf::sim::Time::from_nanos(when),
                               std::move(fn));
          },
          chains, rounds);
    }
    m.engine_per_event = static_cast<double>(g_allocs.load() - before) /
                         static_cast<double>(executed);
  }
  const double denom = m.engine_per_event > 1e-9 ? m.engine_per_event : 1e-9;
  m.reduction = m.baseline_per_event / denom;
  if (m.reduction > 1e6) m.reduction = 1e6;  // effectively allocation-free
  return m;
}

struct TimedRun {
  MegascaleReport report;
  double wall_seconds = 0.0;
  std::vector<psf::sim::TraceEntry> trace;
};

TimedRun timed_run(const MegascaleConfig& config, std::size_t workers) {
  MegascaleWorld world(config);
  const double t0 = now_seconds();
  TimedRun out;
  out.report = world.run(workers);
  out.wall_seconds = now_seconds() - t0;
  if (config.record_trace) out.trace = world.engine().merged_trace();
  return out;
}

int run_bench(bool smoke, std::size_t clients_override,
              std::size_t workers_override) {
  MegascaleConfig config;
  if (smoke) {
    config.nodes = 8;
    config.regions = 2;
    config.clients = 1'000;
    config.requests_per_client = 2;
    config.record_trace = true;  // smoke asserts full-trace determinism
  } else {
    config.nodes = 120;
    config.regions = 8;
    config.clients = 100'000;
    config.requests_per_client = 3;
  }
  if (clients_override > 0) config.clients = clients_override;
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t workers =
      workers_override > 0 ? workers_override : (smoke ? 2 : 4);

  std::printf("megascale: %zu nodes, %zu regions, %zu clients x %zu "
              "requests, %zu workers (hw=%zu)\n",
              config.nodes, config.regions, config.clients,
              config.requests_per_client, workers, hw);

  const TimedRun serial = timed_run(config, 1);
  const TimedRun parallel = timed_run(config, workers);

  const MegascaleReport& sr = serial.report;
  const MegascaleReport& pr = parallel.report;

  bool deterministic =
      sr.events_executed == pr.events_executed &&
      sr.requests_completed == pr.requests_completed &&
      sr.requests_failed == pr.requests_failed &&
      sr.sim_seconds == pr.sim_seconds;
  if (config.record_trace && serial.trace != parallel.trace) {
    deterministic = false;
  }

  const double speedup = parallel.wall_seconds > 0.0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;
  const bool speedup_gate_applicable = hw >= 4 && workers >= 4;
  const bool speedup_gate_passed = speedup_gate_applicable && speedup >= 2.5;

  const AllocMeasurement allocs =
      measure_allocs(/*chains=*/256, /*rounds=*/smoke ? 200 : 800);

  const std::uint64_t rss = vm_rss_bytes();
  const double bytes_per_client =
      static_cast<double>(rss) / static_cast<double>(config.clients);

  std::printf("  serial:   %zu events in %.3fs (%.0f events/s)\n",
              sr.events_executed, serial.wall_seconds,
              sr.events_executed / serial.wall_seconds);
  std::printf("  parallel: %zu events in %.3fs (%.0f events/s, speedup "
              "%.2fx)\n",
              pr.events_executed, parallel.wall_seconds,
              pr.events_executed / parallel.wall_seconds, speedup);
  std::printf("  deterministic=%s allocs/event %.3f -> %.5f (%.0fx)\n",
              deterministic ? "yes" : "NO", allocs.baseline_per_event,
              allocs.engine_per_event, allocs.reduction);

  psf::bench::JsonResult json(smoke ? "megascale_smoke" : "megascale");
  json.add("nodes", static_cast<std::uint64_t>(config.nodes));
  json.add("regions", static_cast<std::uint64_t>(config.regions));
  json.add("clients", static_cast<std::uint64_t>(config.clients));
  json.add("requests_per_client",
           static_cast<std::uint64_t>(config.requests_per_client));
  json.add("cut_links", static_cast<std::uint64_t>(sr.cut_links));
  json.add("lookahead_ms", sr.lookahead.millis());
  json.add("events_executed", static_cast<std::uint64_t>(sr.events_executed));
  json.add("requests_completed", sr.requests_completed);
  json.add("requests_failed", sr.requests_failed);
  json.add("sim_seconds", sr.sim_seconds);
  json.add("wall_seconds_serial", serial.wall_seconds);
  json.add("events_per_sec_serial",
           sr.events_executed / serial.wall_seconds);
  json.add("requests_per_sec_serial",
           sr.requests_completed / serial.wall_seconds);
  json.add("workers", static_cast<std::uint64_t>(workers));
  json.add("hardware_threads", static_cast<std::uint64_t>(hw));
  json.add("wall_seconds_parallel", parallel.wall_seconds);
  json.add("events_per_sec_parallel",
           pr.events_executed / parallel.wall_seconds);
  json.add("speedup", speedup);
  json.add("speedup_gate", 2.5);
  json.add("speedup_gate_skipped", !speedup_gate_applicable);
  json.add("speedup_gate_passed", speedup_gate_passed);
  json.add("barrier_windows", pr.engine.windows);
  json.add("cross_region_posts", pr.engine.cross_region_posts);
  json.add("mailbox_nodes", pr.engine.mailbox_nodes);
  json.add("mailbox_reuses", pr.engine.mailbox_reuses);
  json.add("mailbox_blocks", pr.engine.mailbox_blocks);
  json.add("bytes_per_client", bytes_per_client);
  json.add("alloc_baseline_per_event", allocs.baseline_per_event);
  json.add("alloc_engine_per_event", allocs.engine_per_event);
  json.add("alloc_reduction", allocs.reduction);
  json.add("alloc_gate_passed", allocs.reduction >= 10.0);
  json.add("deterministic", deterministic);
  json.write();

  if (!deterministic) {
    std::fprintf(stderr,
                 "megascale: parallel run diverged from serial run\n");
    return 1;
  }
  if (allocs.reduction < 10.0) {
    std::fprintf(stderr, "megascale: alloc reduction %.1fx below 10x gate\n",
                 allocs.reduction);
    return 1;
  }
  if (speedup_gate_applicable && !speedup_gate_passed) {
    std::fprintf(stderr, "megascale: speedup %.2fx below 2.5x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t clients = 0;
  std::size_t workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: megascale [--smoke] [--clients=N] [--workers=N]\n");
      return 2;
    }
  }
  return run_bench(smoke, clients, workers);
}
