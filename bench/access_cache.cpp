// Access-path plan cache under fleet load (DESIGN.md "Access-path caching &
// coalescing"): on the Fig. 5 three-site topology, the first client of each
// site pays the full cold access (planner search + deployment) while every
// later identical client replays the cached path — zero planner candidates,
// zero simulated planning/deployment time, and host wall time at least an
// order of magnitude below the cold search. A 32-wide burst of identical
// concurrent requests exercises coalescing: the planner runs exactly once
// for the whole herd.
//
// Exits nonzero when any of those acceptance properties fails, so the bench
// doubles as a regression gate. Results land in BENCH_access_cache.json.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"

using namespace psf;

namespace {

constexpr int kWarmClientsPerSite = 8;  // after the cold one; see note below
constexpr int kBurst = 32;
constexpr double kRateRps = 10.0;   // per client; keeps shared views unsaturated
constexpr double kBurstRps = 3.0;   // different rate bucket => own cache entry

planner::PlanRequest request_for(std::int64_t trust, double rate) {
  planner::PlanRequest d;
  d.interface_name = "ClientInterface";
  d.required_properties.emplace_back("TrustLevel",
                                     spec::PropertyValue::integer(trust));
  d.request_rate_rps = rate;
  return d;
}

runtime::AccessOutcome bind_or_die(core::Framework& fw, net::NodeId node,
                                   const planner::PlanRequest& defaults) {
  auto proxy = fw.make_proxy(node, "SecureMail", defaults);
  util::Status status = util::internal_error("incomplete");
  bool done = false;
  proxy->bind([&](util::Status st) {
    status = st;
    done = true;
  });
  fw.run_until_condition([&done]() { return done; },
                         sim::Duration::from_seconds(300));
  PSF_CHECK_MSG(status.is_ok(), status.to_string());
  return proxy->outcome();
}

}  // namespace

int main() {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);
  auto config = std::make_shared<mail::MailServiceConfig>();
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  PSF_CHECK(fw.register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator())
                .is_ok());

  struct Site {
    const char* name;
    net::NodeId node;
    std::int64_t trust;
  };
  const Site site_list[] = {{"New York", sites.ny_client, 4},
                            {"San Diego", sites.sd_client, 4},
                            {"Seattle", sites.sea_client, 2}};

  bool ok = true;
  auto require = [&ok](bool condition, const char* what) {
    if (!condition) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
  };

  // ---- cold vs warm, per site ----------------------------------------------
  // Rates are sized so even a view shared by every site's fleet stays under
  // its capacity: (1 + kWarmClientsPerSite) * 3 sites * kRateRps < 500 rps.
  std::printf("=== Access-path cache: cold vs warm (%d warm clients/site) ===\n",
              kWarmClientsPerSite);
  std::printf("%-10s %12s %14s %12s %14s\n", "site", "cold wall ms",
              "cold sim s", "warm wall ms", "warm candidates");

  double cold_wall_s = 0.0, warm_wall_s = 0.0, cold_sim_s = 0.0;
  std::uint64_t cold_candidates = 0, warm_candidates = 0;
  int warm_accesses = 0;

  for (const Site& site : site_list) {
    const planner::PlanRequest defaults = request_for(site.trust, kRateRps);
    const runtime::AccessOutcome cold = bind_or_die(fw, site.node, defaults);
    require(!cold.cache_hit, "first client of a site must plan cold");
    require(cold.search.candidates_examined > 0,
            "cold plan must examine candidates");
    cold_wall_s += cold.costs.planning_wall_seconds;
    cold_sim_s += (cold.costs.planning + cold.costs.deployment).seconds();
    cold_candidates += cold.search.candidates_examined;

    double site_warm_wall = 0.0;
    for (int i = 0; i < kWarmClientsPerSite; ++i) {
      const runtime::AccessOutcome warm = bind_or_die(fw, site.node, defaults);
      require(warm.cache_hit, "repeat client must hit the plan cache");
      require(warm.search.candidates_examined == 0,
              "warm access must examine zero planner candidates");
      require(warm.costs.planning.nanos() == 0 &&
                  warm.costs.deployment.nanos() == 0,
              "warm access must pay no simulated planning/deployment");
      require(warm.entry == cold.entry,
              "warm access must share the cold client's entry binding");
      site_warm_wall += warm.costs.planning_wall_seconds;
      warm_candidates += warm.search.candidates_examined;
      ++warm_accesses;
    }
    warm_wall_s += site_warm_wall;
    std::printf("%-10s %12.3f %14.3f %12.5f %14llu\n", site.name,
                cold.costs.planning_wall_seconds * 1e3, cold_sim_s,
                site_warm_wall / kWarmClientsPerSite * 1e3,
                static_cast<unsigned long long>(warm_candidates));
  }

  const double cold_mean_wall = cold_wall_s / 3.0;
  const double warm_mean_wall = warm_wall_s / warm_accesses;
  const double speedup =
      warm_mean_wall > 0.0 ? cold_mean_wall / warm_mean_wall : 1e9;
  std::printf("cold mean wall %.3f ms, warm mean wall %.5f ms, speedup %.0fx\n",
              cold_mean_wall * 1e3, warm_mean_wall * 1e3, speedup);
  require(speedup >= 10.0, "warm access must be >= 10x faster (wall) than cold");

  // ---- coalescing burst ----------------------------------------------------
  const runtime::PlanCacheTelemetry& telemetry = fw.server().access_telemetry();
  const std::uint64_t misses_before = telemetry.misses;
  const std::uint64_t coalesced_before = telemetry.coalesced;

  planner::PlanRequest burst = request_for(4, kBurstRps);
  burst.client_node = sites.ny_client;
  int burst_ok = 0, burst_cold = 0, burst_coalesced = 0;
  for (int i = 0; i < kBurst; ++i) {
    fw.server().request_access(
        "SecureMail", burst,
        [&](util::Expected<runtime::AccessOutcome> outcome) {
          if (!outcome) return;
          ++burst_ok;
          if (outcome->coalesced) {
            ++burst_coalesced;
          } else {
            ++burst_cold;
          }
        });
  }
  fw.run();

  std::printf("burst of %d identical concurrent accesses: %d bound, "
              "%d planned cold, %d coalesced\n",
              kBurst, burst_ok, burst_cold, burst_coalesced);
  require(burst_ok == kBurst, "every burst access must bind successfully");
  require(burst_cold == 1, "the burst must run the planner exactly once");
  require(burst_coalesced == kBurst - 1,
          "every other burst access must coalesce");
  require(telemetry.misses - misses_before == 1,
          "telemetry must count one miss for the burst");
  require(telemetry.coalesced - coalesced_before ==
              static_cast<std::uint64_t>(kBurst - 1),
          "telemetry must count the burst waiters as coalesced");

  std::printf("plan-cache telemetry after run:\n%s", telemetry.report().c_str());

  // ---- machine-readable result ---------------------------------------------
  bench::JsonResult json("access_cache");
  json.add("sites", 3);
  json.add("warm_clients_per_site", kWarmClientsPerSite);
  json.add("burst", kBurst);
  json.add("request_rate_rps", kRateRps);
  json.add("cold_mean_wall_seconds", cold_mean_wall);
  json.add("warm_mean_wall_seconds", warm_mean_wall);
  json.add("warm_speedup", speedup);
  json.add("cold_mean_sim_seconds", cold_sim_s / 3.0);
  json.add("cold_candidates", cold_candidates);
  json.add("warm_candidates", warm_candidates);
  json.add("warm_accesses_per_second",
           warm_wall_s > 0.0 ? warm_accesses / warm_wall_s : 0.0);
  json.add("cache_hits", telemetry.hits);
  json.add("cache_misses", telemetry.misses);
  json.add("coalesced", telemetry.coalesced);
  json.add("passed", ok);
  json.write();

  std::printf("access_cache acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
