// E2 — Figures 5 & 6: the case-study topology and the deployments the
// framework generates for clients at each site. Prints each plan and checks
// it against the paper's published deployment; exits non-zero on mismatch.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"

namespace {

using namespace psf;

struct World {
  core::CaseStudySites sites;
  std::unique_ptr<core::Framework> fw;
  mail::MailConfigPtr config;

  World() {
    net::Network network = core::case_study_network(&sites);
    core::FrameworkOptions options;
    options.lookup_node = sites.new_york[0];
    options.server_node = sites.new_york[0];
    fw = std::make_unique<core::Framework>(std::move(network), options);
    config = std::make_shared<mail::MailServiceConfig>();
    PSF_CHECK(
        mail::register_mail_factories(fw->runtime().factories(), config)
            .is_ok());
    auto st = fw->register_service(mail::mail_registration(sites.mail_home),
                                   mail::mail_translator());
    PSF_CHECK_MSG(st.is_ok(), st.to_string());
  }

  runtime::AccessOutcome bind(net::NodeId node, std::int64_t trust) {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(trust));
    defaults.request_rate_rps = 50.0;
    auto proxy = fw->make_proxy(node, "SecureMail", defaults);
    util::Status status = util::internal_error("incomplete");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw->run_until_condition([&done]() { return done; },
                            sim::Duration::from_seconds(300));
    PSF_CHECK_MSG(status.is_ok(), status.to_string());
    return proxy->outcome();
  }
};

// component -> site prefix ("ny"/"sd"/"sea"), reused flags folded in.
std::multiset<std::string> summarize(core::Framework& fw,
                                     const planner::DeploymentPlan& plan) {
  std::multiset<std::string> out;
  for (const auto& p : plan.placements) {
    const std::string& node = fw.network().node(p.node).name;
    out.insert(p.component->name + "@" + node.substr(0, node.find('-')) +
               (p.reuse_existing ? "*" : ""));
  }
  return out;
}

bool check(const char* label, const std::multiset<std::string>& got,
           const std::multiset<std::string>& want) {
  if (got == want) {
    std::printf("  [OK] matches the paper's Fig. 6 deployment\n\n");
    return true;
  }
  std::printf("  [MISMATCH] %s\n  expected:", label);
  for (const auto& s : want) std::printf(" %s", s.c_str());
  std::printf("\n  got:     ");
  for (const auto& s : got) std::printf(" %s", s.c_str());
  std::printf("\n\n");
  return false;
}

}  // namespace

int main() {
  World world;
  std::printf("=== Figure 5: case-study topology ===\n%s\n",
              world.fw->network().to_string().c_str());

  bool ok = true;

  std::printf("=== Figure 6: dynamically deployed components ===\n");
  {
    auto outcome = world.bind(world.sites.ny_client, 4);
    std::printf("-- Client request in New York (TrustLevel 4) --\n%s",
                outcome.plan.to_string(world.fw->network()).c_str());
    ok &= check("New York", summarize(*world.fw, outcome.plan),
                {"MailClient@ny", "MailServer@ny*"});
  }

  {
    auto outcome = world.bind(world.sites.sd_client, 4);
    std::printf("-- Client request in San Diego (TrustLevel 4) --\n%s",
                outcome.plan.to_string(world.fw->network()).c_str());
    ok &= check("San Diego", summarize(*world.fw, outcome.plan),
                {"MailClient@sd", "ViewMailServer@sd", "Encryptor@sd",
                 "Decryptor@ny", "MailServer@ny*"});
  }

  {
    auto outcome = world.bind(world.sites.sea_client, 2);
    std::printf("-- Client request in Seattle (TrustLevel 2) --\n%s",
                outcome.plan.to_string(world.fw->network()).c_str());
    ok &= check("Seattle", summarize(*world.fw, outcome.plan),
                {"ViewMailClient@sea", "ViewMailServer@sea", "Encryptor@sea",
                 "Decryptor@sd", "ViewMailServer@sd*"});
  }

  std::printf("fig6 reproduction: %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
