// E9 (robustness) — the mail workload under the reference fault plan: two
// full San Diego partition windows (1.2 s each) plus a silent crash of the
// node hosting the shared San Diego view, with lease-based detection and
// the client retry/rebind policy either on or off.
//
// Deployment under test: a seed bind from sd_client places the shared
// ViewMailServer + Encryptor there; workload clients on the two surviving
// San Diego nodes and in Seattle then bind and reuse that view, so the
// crash at t=8 s strands every client on a dead wire. Recovery is entirely
// detection + rebind: nobody calls report_node_failure.
//
// Acceptance gates (exit nonzero on failure):
//   1. delivered-request ratio with retries >= 0.95;
//   2. delivered-request ratio without retries <= 0.85 (the faults really
//      bite when nothing bridges them);
//   3. crash detection latency <= 2 x (heartbeat + grace);
//   4. the with-retries run is bit-identical across two executions with the
//      same fault-plan seed (every counter compared).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/case_study.hpp"
#include "core/fault_plan.hpp"
#include "core/framework.hpp"
#include "core/workload.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"

using namespace psf;

namespace {

constexpr std::uint64_t kPlanSeed = 0xC0A05EEDULL;

struct VariantResult {
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  // Counters compared for bit-identity between same-seed runs.
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_unroutable = 0;
  std::uint64_t invoke_timeouts = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t rebinds = 0;
  std::uint64_t expirations = 0;
  double detection_max_ms = 0.0;
  double lease_duration_ms = 0.0;
  bool all_finished = false;

  double delivered_ratio() const {
    const std::uint64_t total = ops_ok + ops_failed;
    return total == 0 ? 0.0 : static_cast<double>(ops_ok) /
                                  static_cast<double>(total);
  }
  bool identical_to(const VariantResult& o) const {
    return ops_ok == o.ops_ok && ops_failed == o.ops_failed &&
           messages_sent == o.messages_sent &&
           messages_dropped == o.messages_dropped &&
           messages_unroutable == o.messages_unroutable &&
           invoke_timeouts == o.invoke_timeouts && attempts == o.attempts &&
           retries == o.retries && rebinds == o.rebinds &&
           expirations == o.expirations &&
           detection_max_ms == o.detection_max_ms;
  }
};

struct Client {
  std::unique_ptr<runtime::GenericProxy> proxy;
  std::unique_ptr<core::WorkloadClient> workload;
};

VariantResult run_variant(bool retries, std::uint64_t seed) {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);
  auto config = std::make_shared<mail::MailServiceConfig>();
  if (!mail::register_mail_factories(fw.runtime().factories(), config)
           .is_ok() ||
      !fw.register_service(mail::mail_registration(sites.mail_home),
                           mail::mail_translator())
           .is_ok()) {
    std::fprintf(stderr, "chaos_sweep: service registration failed\n");
    return {};
  }
  fw.enable_adaptation("SecureMail");

  auto bind_proxy = [&fw](net::NodeId node, std::int64_t trust) {
    planner::PlanRequest request;
    request.interface_name = "ClientInterface";
    request.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(trust));
    request.request_rate_rps = 25.0;
    auto proxy = fw.make_proxy(node, "SecureMail", request);
    bool done = false;
    bool ok = false;
    proxy->bind([&](util::Status st) {
      ok = st.is_ok();
      done = true;
    });
    fw.run_until_condition([&done]() { return done; },
                           sim::Duration::from_seconds(300));
    if (!ok) proxy.reset();
    return proxy;
  };

  // Seed bind: places the shared SD view + encryptor on sd_client.
  auto seed_proxy = bind_proxy(sites.sd_client, 4);
  if (!seed_proxy) {
    std::fprintf(stderr, "chaos_sweep: seed bind failed\n");
    return {};
  }

  struct Spec {
    net::NodeId node;
    std::int64_t trust;
    const char* user;
  };
  const Spec specs[] = {
      {sites.san_diego[0], 4, "u-sd0"},
      {sites.san_diego[1], 4, "u-sd1"},
      {sites.sea_client, 2, "u-sea"},
  };

  std::vector<Client> clients;
  for (const Spec& spec : specs) {
    Client client;
    client.proxy = bind_proxy(spec.node, spec.trust);
    if (!client.proxy) {
      std::fprintf(stderr, "chaos_sweep: bind for %s failed\n", spec.user);
      return {};
    }
    clients.push_back(std::move(client));
  }

  // Detection after all binds (register_service/binds drain the simulator;
  // the lease timers keep the queue non-empty forever afterwards).
  auto& lease = fw.enable_failure_detection();

  runtime::RetryPolicy policy;
  policy.attempt_timeout = sim::Duration::from_seconds(1);
  policy.backoff_base = sim::Duration::from_millis(200);
  policy.backoff_cap = sim::Duration::from_seconds(1);
  policy.max_attempts = 8;
  policy.rebind_on_unreachable = true;
  if (retries) {
    for (Client& client : clients) {
      client.proxy->enable_retries(policy, &fw.retry_telemetry());
    }
  }

  core::WorkloadParams params;
  params.sends = 50;
  params.receives = 10;
  params.think = sim::Duration::from_millis(150);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const Spec& spec = specs[i];
    config->keys->provision_user(spec.user, mail::kMaxSensitivity);
    runtime::GenericProxy* proxy = clients[i].proxy.get();
    clients[i].workload = std::make_unique<core::WorkloadClient>(
        fw.runtime(), spec.user, config,
        [proxy](runtime::Request request, runtime::ResponseCallback done) {
          proxy->invoke(std::move(request), std::move(done));
        },
        params);
  }

  // Reference fault plan: two 1.2 s San Diego partitions, then the silent
  // crash of the shared view's host.
  std::vector<net::NodeId> others = sites.new_york;
  others.insert(others.end(), sites.seattle.begin(), sites.seattle.end());
  core::FaultPlan plan(seed);
  plan.partition_window(sim::Duration::from_seconds(2),
                        sim::Duration::from_millis(1200), sites.san_diego,
                        others);
  plan.partition_window(sim::Duration::from_seconds(5),
                        sim::Duration::from_millis(1200), sites.san_diego,
                        others);
  plan.crash_node_at(sim::Duration::from_millis(6500), sites.sd_client);
  plan.arm(fw);

  for (Client& client : clients) client.workload->start();
  const bool all_finished = fw.run_until_condition(
      [&clients]() {
        for (const Client& client : clients) {
          if (!client.workload->finished()) return false;
        }
        return true;
      },
      sim::Duration::from_seconds(300));

  VariantResult result;
  for (const Client& client : clients) {
    const core::WorkloadStats& wl = client.workload->stats();
    result.ops_ok += wl.sends_ok + wl.receives_ok;
    result.ops_failed += wl.sends_failed + wl.receives_failed;
  }
  const runtime::RuntimeStats& stats = fw.runtime().stats();
  result.messages_sent = stats.messages_sent;
  result.messages_dropped = stats.messages_dropped;
  result.messages_unroutable = stats.messages_unroutable;
  result.invoke_timeouts = stats.invoke_timeouts;
  result.attempts = fw.retry_telemetry().attempts;
  result.retries = fw.retry_telemetry().retries;
  result.rebinds = fw.retry_telemetry().rebinds;
  result.expirations = lease.expirations().size();
  util::SampleSet detection = lease.detection_latency_ms();
  result.detection_max_ms = detection.count() == 0 ? 0.0 : detection.max();
  result.lease_duration_ms = lease.lease_duration().millis();
  result.all_finished = all_finished;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Chaos sweep (2 SD partition windows + view-host crash, "
              "3 clients, seed %llu) ===\n",
              static_cast<unsigned long long>(kPlanSeed));

  const VariantResult with_retries = run_variant(true, kPlanSeed);
  const VariantResult replay = run_variant(true, kPlanSeed);
  const VariantResult without = run_variant(false, kPlanSeed);

  auto print = [](const char* label, const VariantResult& r) {
    std::printf(
        "%-12s ok %5llu fail %4llu ratio %.3f | drops %llu unroutable %llu "
        "timeouts %llu attempts %llu retries %llu rebinds %llu | "
        "expirations %llu detect %.0fms\n",
        label, static_cast<unsigned long long>(r.ops_ok),
        static_cast<unsigned long long>(r.ops_failed), r.delivered_ratio(),
        static_cast<unsigned long long>(r.messages_dropped),
        static_cast<unsigned long long>(r.messages_unroutable),
        static_cast<unsigned long long>(r.invoke_timeouts),
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.rebinds),
        static_cast<unsigned long long>(r.expirations), r.detection_max_ms);
  };
  print("retries", with_retries);
  print("no-retries", without);

  const bool deterministic = with_retries.identical_to(replay);
  const double detection_bound_ms = 2.0 * with_retries.lease_duration_ms;

  bool pass = true;
  auto gate = [&pass](bool ok, const char* what) {
    std::printf("gate %-34s %s\n", what, ok ? "PASS" : "FAIL");
    pass = pass && ok;
  };
  gate(with_retries.all_finished && without.all_finished,
       "all workloads ran to completion");
  gate(with_retries.delivered_ratio() >= 0.95, "retry delivered ratio >= 0.95");
  gate(without.delivered_ratio() <= 0.85, "no-retry delivered ratio <= 0.85");
  gate(with_retries.detection_max_ms > 0.0 &&
           with_retries.detection_max_ms <= detection_bound_ms,
       "detection latency <= 2x lease duration");
  gate(deterministic, "same seed is bit-identical");

  bench::JsonResult json("chaos_sweep");
  json.add("plan_seed", static_cast<std::uint64_t>(kPlanSeed));
  json.add("ops_ok_retries", with_retries.ops_ok);
  json.add("ops_failed_retries", with_retries.ops_failed);
  json.add("delivered_ratio_retries", with_retries.delivered_ratio());
  json.add("ops_ok_noretries", without.ops_ok);
  json.add("ops_failed_noretries", without.ops_failed);
  json.add("delivered_ratio_noretries", without.delivered_ratio());
  json.add("messages_dropped", with_retries.messages_dropped);
  json.add("messages_unroutable", with_retries.messages_unroutable);
  json.add("invoke_timeouts", with_retries.invoke_timeouts);
  json.add("attempts", with_retries.attempts);
  json.add("retries", with_retries.retries);
  json.add("rebinds", with_retries.rebinds);
  json.add("lease_expirations", with_retries.expirations);
  json.add("detection_max_ms", with_retries.detection_max_ms);
  json.add("detection_bound_ms", detection_bound_ms);
  json.add("deterministic", deterministic);
  json.add("gates_pass", pass);
  json.write();

  return pass ? 0 : 1;
}
