// E3 — Figure 7: average client-perceived send latency for the nine
// deployment scenarios, 1..5 clients. Each client sends 100 messages and
// receives 10 times (see core::WorkloadParams for the exact mix).
//
// The paper's figure clusters into four groups (log-scale y axis):
//   Group 1 (best):  SF, SS0, DF, DS0
//   Group 2:         SS1000, DS1000
//   Group 3:         SS500, DS500
//   Group 4 (worst): SS — the naive static deployment over the slow link
// with dynamic deployments indistinguishable from their static mirrors.
// This harness prints the same series and validates the grouping. A second
// table reports the coherence data-path cost behind each scenario at the
// largest client count (flushes, directory push RPCs and the RPCs batching
// saved, time clients spent blocked on an in-flight flush).
#include <cstdio>
#include <map>
#include <string>

#include "bench_json.hpp"
#include "core/scenarios.hpp"

int main() {
  using psf::core::Scenario;
  constexpr std::size_t kMaxClients = 5;

  std::printf("=== Figure 7: average client-perceived send latency [ms] ===\n");
  std::printf("%-8s", "scenario");
  for (std::size_t c = 1; c <= kMaxClients; ++c) {
    std::printf(" %9zu", c);
  }
  std::printf("   (columns: number of clients)\n");

  std::map<Scenario, std::map<std::size_t, double>> series;
  std::map<Scenario, psf::core::CoherenceSummary> coherence;
  for (Scenario s : psf::core::kAllScenarios) {
    std::printf("%-8s", psf::core::scenario_name(s));
    for (std::size_t c = 1; c <= kMaxClients; ++c) {
      const auto result = psf::core::run_scenario(s, c);
      series[s][c] = result.mean_send_ms;
      if (c == kMaxClients) coherence[s] = result.coherence;
      std::printf(" %9.3f", result.mean_send_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n=== coherence data path at %zu clients ===\n", kMaxClients);
  std::printf("%-8s %8s %11s %9s %10s %10s %7s\n", "scenario", "flushes",
              "sync bytes", "pushRPCs", "rpcsSaved", "blockedMs", "stale");
  for (Scenario s : psf::core::kAllScenarios) {
    const auto& co = coherence[s];
    std::printf("%-8s %8llu %11llu %9llu %10llu %10.1f %7zu\n",
                psf::core::scenario_name(s),
                static_cast<unsigned long long>(co.flushes),
                static_cast<unsigned long long>(co.bytes_flushed),
                static_cast<unsigned long long>(co.push_rpcs),
                static_cast<unsigned long long>(co.push_rpcs_saved),
                co.blocked_on_flush_ms, co.residual_pending);
  }

  // Validate the four-group structure at every client count.
  bool ok = true;
  auto at = [&](Scenario s, std::size_t c) { return series[s][c]; };
  for (std::size_t c = 1; c <= kMaxClients; ++c) {
    for (Scenario fast :
         {Scenario::kSF, Scenario::kSS0, Scenario::kDF, Scenario::kDS0}) {
      ok &= at(fast, c) < at(Scenario::kSS1000, c);
      ok &= at(fast, c) < at(Scenario::kDS1000, c);
      ok &= at(fast, c) * 10.0 < at(Scenario::kSS, c);
    }
    ok &= at(Scenario::kDS1000, c) < at(Scenario::kDS500, c);
    ok &= at(Scenario::kSS1000, c) < at(Scenario::kSS500, c);
    ok &= at(Scenario::kDS500, c) < at(Scenario::kSS, c);
    ok &= at(Scenario::kSS500, c) < at(Scenario::kSS, c);
  }

  // Dynamic ≈ static within each group (50% tolerance across the 10x+ gaps
  // between groups).
  auto close = [&](Scenario a, Scenario b) {
    for (std::size_t c = 1; c <= kMaxClients; ++c) {
      const double hi = std::max(at(a, c), at(b, c));
      if (std::abs(at(a, c) - at(b, c)) > 0.5 * hi) return false;
    }
    return true;
  };
  const bool dynamic_matches_static =
      close(Scenario::kDF, Scenario::kSF) &&
      close(Scenario::kDS0, Scenario::kSS0) &&
      close(Scenario::kDS500, Scenario::kSS500) &&
      close(Scenario::kDS1000, Scenario::kSS1000);

  psf::bench::JsonResult json("fig7_latency");
  json.add("max_clients", static_cast<int>(kMaxClients));
  for (Scenario s : psf::core::kAllScenarios) {
    const std::string key = psf::core::scenario_name(s);
    json.add(key + "_mean_ms", at(s, kMaxClients));
    const auto& co = coherence[s];
    json.add(key + "_flushes", co.flushes);
    json.add(key + "_push_rpcs", co.push_rpcs);
    json.add(key + "_push_rpcs_saved", co.push_rpcs_saved);
    json.add(key + "_blocked_ms", co.blocked_on_flush_ms);
  }
  json.add("grouping_ok", ok);
  json.add("dynamic_matches_static", dynamic_matches_static);
  json.write();

  std::printf("\npaper grouping {SF,SS0,DF,DS0} < {*1000} < {*500} << {SS}: "
              "%s\n",
              ok ? "HOLDS" : "VIOLATED");
  std::printf("dynamic deployments track static counterparts: %s\n",
              dynamic_matches_static ? "HOLDS" : "VIOLATED");
  return ok && dynamic_matches_static ? 0 : 1;
}
