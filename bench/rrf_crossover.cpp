// E7 (ablation) — where does caching stop paying off?
//
// §3.3's load condition "results in a preference for the ViewMailServer
// component in low-bandwidth environments because of the former's caching
// benefits". This bench maps that preference boundary: for a sweep of
// (view RRF, WAN round-trip latency), does the min-latency planner deploy
// the cache view or connect directly? The crossover line should move the
// way intuition says: better caches (lower RRF) and slower links both favor
// the view; a pass-through view (RRF 1.0) is never worth an extra hop.
#include <cstdio>

#include "planner/planner.hpp"
#include "spec/builder.hpp"

using namespace psf;

namespace {

spec::ServiceSpec make_spec(double rrf) {
  return spec::SpecBuilder("Crossover")
      .interval_property("TrustLevel", 1, 5)
      .interface("Api", {"TrustLevel"})
      .interface("Entry", {"TrustLevel"})
      .component("Client")
      .implements("Entry", {})
      .requires_iface("Api", {})
      .cpu_per_request(10)
      .done()
      .component("Origin")
      .implements("Api", {{"TrustLevel", spec::lit_int(5)}})
      .condition_ge("TrustLevel", spec::PropertyValue::integer(5))
      .cpu_per_request(80)
      .message_bytes(256, 512)
      .done()
      .data_view("CacheView", "Origin")
      .implements("Api", {{"TrustLevel", spec::lit_int(3)}})
      .requires_iface("Api", {})
      .rrf(rrf)
      // A heavyweight cache (2 ms/request at 1M cpu units/s): deploying it
      // only pays off once the link it hides is slow enough.
      .cpu_per_request(2000)
      .message_bytes(256, 512)
      .code_size(200 * 1024)
      .done()
      .build();
}

// Returns true when the plan contains the cache view.
bool plans_view(double rrf, double wan_latency_ms) {
  net::Network network;
  net::Credentials edge_creds;
  edge_creds.set("trust", std::int64_t{3});
  edge_creds.set("secure", true);
  const net::NodeId edge = network.add_node("edge", 1e6, edge_creds);
  net::Credentials origin_creds;
  origin_creds.set("trust", std::int64_t{5});
  origin_creds.set("secure", true);
  const net::NodeId origin = network.add_node("origin", 1e6, origin_creds);
  net::Credentials secure;
  secure.set("secure", true);
  network.add_link(edge, origin, 10e6,
                   sim::Duration::from_millis(wan_latency_ms), secure);

  spec::ServiceSpec service = make_spec(rrf);
  planner::CredentialMapTranslator translator;
  translator.map_node({"TrustLevel", "trust", spec::PropertyType::kInterval,
                       spec::PropertyValue::integer(1)});
  planner::EnvironmentView env(network, translator);
  planner::Planner planner(service, env);

  planner::PlanRequest request;
  request.interface_name = "Entry";
  request.client_node = edge;
  request.code_origin = origin;
  request.request_rate_rps = 10.0;

  auto plan = planner.plan(request);
  PSF_CHECK_MSG(plan.has_value(), plan.status().to_string());
  for (const auto& p : plan->placements) {
    if (p.component->name == "CacheView") return true;
  }
  return false;
}

}  // namespace

int main() {
  const double rrfs[] = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0};
  const double latencies_ms[] = {0.1, 0.5, 1, 2, 5, 10, 50, 200};

  std::printf("=== cache-view deployment decision (V = view deployed, . = "
              "direct) ===\n");
  std::printf("rrf \\ WAN RTT/2 [ms]:");
  for (double l : latencies_ms) std::printf(" %6.1f", l);
  std::printf("\n");

  bool monotone = true;
  for (double rrf : rrfs) {
    std::printf("%-20.2f", rrf);
    bool prev = true;
    bool first = true;
    for (double l : latencies_ms) {
      const bool view = plans_view(rrf, l);
      std::printf(" %6s", view ? "V" : ".");
      // Along increasing latency, once the view wins it must keep winning.
      if (!first && view && !prev) {
        // transitioned . -> V: fine (that is the expected direction)
      }
      if (!first && !view && prev && l > latencies_ms[0]) {
        // transitioned V -> . with rising latency: non-monotone
        monotone = false;
      }
      prev = view;
      first = false;
    }
    std::printf("\n");
  }

  const bool passthrough_never = !plans_view(1.0, 200.0);
  std::printf("\npass-through view (rrf=1.0) never deployed: %s\n",
              passthrough_never ? "yes" : "NO");
  std::printf("view preference monotone in link latency: %s\n",
              monotone ? "yes" : "NO");
  return (passthrough_never && monotone) ? 0 : 1;
}
