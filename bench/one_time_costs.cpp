// E4 — §4.2 one-time costs: proxy download (lookup), planning, and
// component deployment/startup for each site's first client. The paper
// reports these "sum up to approximately 10 seconds" on its testbed; the
// absolute value depends on code sizes and link speeds, but the structure
// (deployment-dominated, incurred once) must hold.
#include <cctype>
#include <cstdio>
#include <memory>

#include "bench_json.hpp"
#include "core/case_study.hpp"
#include "core/framework.hpp"
#include "mail/mail_spec.hpp"
#include "mail/registration.hpp"

using namespace psf;

int main() {
  core::CaseStudySites sites;
  net::Network network = core::case_study_network(&sites);
  core::FrameworkOptions options;
  options.lookup_node = sites.new_york[0];
  options.server_node = sites.new_york[0];
  core::Framework fw(std::move(network), options);
  auto config = std::make_shared<mail::MailServiceConfig>();
  PSF_CHECK(
      mail::register_mail_factories(fw.runtime().factories(), config).is_ok());
  PSF_CHECK(fw.register_service(mail::mail_registration(sites.mail_home),
                                mail::mail_translator())
                .is_ok());

  struct Row {
    const char* site;
    net::NodeId node;
    std::int64_t trust;
  };
  const Row rows[] = {{"New York", sites.ny_client, 4},
                      {"San Diego", sites.sd_client, 4},
                      {"Seattle", sites.sea_client, 2}};

  std::printf("=== One-time service-access costs (simulated seconds) ===\n");
  std::printf("%-10s %10s %10s %12s %10s  %s\n", "site", "lookup", "planning",
              "deployment", "total", "(planner wall ms)");
  bool all_bounded = true;
  bench::JsonResult json("one_time_costs");
  json.add("sites", 3);
  json.add("request_rate_rps", 50.0);
  double total_wall_s = 0.0;
  for (const Row& row : rows) {
    planner::PlanRequest defaults;
    defaults.interface_name = "ClientInterface";
    defaults.required_properties.emplace_back(
        "TrustLevel", spec::PropertyValue::integer(row.trust));
    defaults.request_rate_rps = 50.0;
    auto proxy = fw.make_proxy(row.node, "SecureMail", defaults);
    util::Status status = util::internal_error("incomplete");
    bool done = false;
    proxy->bind([&](util::Status st) {
      status = st;
      done = true;
    });
    fw.run_until_condition([&done]() { return done; },
                           sim::Duration::from_seconds(300));
    PSF_CHECK_MSG(status.is_ok(), status.to_string());
    const runtime::AccessCosts& costs = proxy->outcome().costs;
    std::printf("%-10s %10.3f %10.3f %12.3f %10.3f  (%.2f)\n", row.site,
                costs.lookup.seconds(), costs.planning.seconds(),
                costs.deployment.seconds(), costs.total().seconds(),
                costs.planning_wall_seconds * 1e3);
    // One-time costs must stay within the same order the paper reports
    // (seconds, not minutes) and are dominated by deployment for the WAN
    // sites.
    all_bounded = all_bounded && costs.total().seconds() < 60.0;

    // Per-site breakdown in the machine-readable result; keys are
    // lower-cased site names ("new_york_total_sim_seconds", ...).
    std::string key = row.site;
    for (char& c : key) c = c == ' ' ? '_' : static_cast<char>(tolower(c));
    json.add(key + "_lookup_sim_seconds", costs.lookup.seconds());
    json.add(key + "_planning_sim_seconds", costs.planning.seconds());
    json.add(key + "_deployment_sim_seconds", costs.deployment.seconds());
    json.add(key + "_total_sim_seconds", costs.total().seconds());
    total_wall_s += costs.planning_wall_seconds;
  }
  std::printf("one-time costs bounded (< 60 s per site): %s\n",
              all_bounded ? "yes" : "NO");
  json.add("planner_wall_seconds", total_wall_s);
  json.add("passed", all_bounded);
  json.write();
  return all_bounded ? 0 : 1;
}
