// E1 — Figure 3: valid component chains for a ClientInterface request on
// the mail service, plus enumeration-cost microbenchmarks.
//
// Paper claim reproduced: "Any path that originates at either the
// MailClient or ViewMailClient component and terminates at the MailServer
// component can satisfy the client request."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mail/mail_spec.hpp"
#include "planner/linkage.hpp"

namespace {

void print_figure3() {
  const psf::spec::ServiceSpec spec = psf::mail::mail_service_spec();
  psf::planner::LinkageOptions options;
  options.max_depth = 6;
  const auto trees =
      psf::planner::enumerate_linkages(spec, "ClientInterface", options);

  std::printf("=== Figure 3: valid component chains (ClientInterface, depth "
              "<= %zu) ===\n",
              options.max_depth);
  bool all_valid = true;
  for (const auto& tree : trees) {
    const auto chain = tree.as_chain();
    const bool starts_at_client = chain.front()->name == "MailClient" ||
                                  chain.front()->name == "ViewMailClient";
    const bool ends_at_server = chain.back()->name == "MailServer";
    all_valid = all_valid && starts_at_client && ends_at_server;
    std::printf("  %s\n", tree.to_string().c_str());
  }
  std::printf("chains: %zu; all start at a client and end at MailServer: "
              "%s\n\n",
              trees.size(), all_valid ? "yes" : "NO (MISMATCH)");
}

void BM_EnumerateMailChains(benchmark::State& state) {
  const psf::spec::ServiceSpec spec = psf::mail::mail_service_spec();
  psf::planner::LinkageOptions options;
  options.max_depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto trees =
        psf::planner::enumerate_linkages(spec, "ClientInterface", options);
    benchmark::DoNotOptimize(trees);
  }
}
BENCHMARK(BM_EnumerateMailChains)->DenseRange(3, 8);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
